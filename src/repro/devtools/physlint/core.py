"""The physlint engine: rule registry, suppressions, and file walking.

``physlint`` is an AST-based linter for the *domain* conventions of this
repository — strict-SI units, the :class:`~repro.errors.ReproError`
exception hierarchy, and the sparse-solver discipline of the thermal
core.  Generic style is left to ``ruff``; physlint only checks what a
general-purpose tool cannot know.

Rules are :class:`Rule` subclasses registered with the :func:`rule`
decorator; each carries a stable ``RPRxxx`` code.  Findings on a line
that carries a ``# physlint: disable=RPRxxx`` comment are suppressed,
as is every finding of a code named by a file-level
``# physlint: disable-file=RPRxxx`` comment.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ...errors import ConfigurationError

#: Pseudo-code attached to files physlint cannot parse at all.
PARSE_ERROR_CODE = "RPR000"

_CODE_RE = re.compile(r"^RPR\d{3}$")
_DISABLE_RE = re.compile(
    r"#\s*physlint:\s*disable=([A-Za-z0-9_, \t]+)")
_DISABLE_FILE_RE = re.compile(
    r"#\s*physlint:\s*disable-file=([A-Za-z0-9_, \t]+)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    Attributes:
        code: Stable rule code (``RPR101`` ...), or ``RPR000`` for
            files that fail to parse.
        rule: Short rule name (``unit-literal`` ...).
        message: Human-readable description of the problem.
        path: File the finding was raised in.
        line: 1-based source line.
        column: 1-based source column.
    """

    code: str
    rule: str
    message: str
    path: str
    line: int
    column: int

    def render(self) -> str:
        """The canonical one-line text form of the finding."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.code} {self.message} [{self.rule}]")


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may inspect about the file under analysis.

    Attributes:
        path: Path as given on the command line.
        posix_path: Same path with ``/`` separators, for suffix matching.
        source: Full file text.
        lines: Source split into lines (1-based access via ``line - 1``).
    """

    path: str
    posix_path: str
    source: str
    lines: Tuple[str, ...]


class Rule(ast.NodeVisitor):
    """Base class for physlint rules.

    Subclasses set the class attributes below, implement ``visit_*``
    methods, and call :meth:`emit` for each violation.  One instance is
    created per file; the engine then calls ``visit`` on the module tree.

    Attributes:
        code: Stable ``RPRxxx`` diagnostic code.
        name: Short kebab-case rule name shown in reports.
        rationale: One-paragraph description of why the rule exists.
        exempt_suffixes: Posix path suffixes the rule never applies to
            (e.g. ``("units.py",)`` for the unit-literal rule).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    exempt_suffixes: Tuple[str, ...] = ()

    def __init__(self, context: LintContext) -> None:
        self.context = context
        self.findings: List[Finding] = []

    @classmethod
    def applies_to(cls, posix_path: str) -> bool:
        """Whether the rule runs on a file (suffix-based exemptions)."""
        return not any(posix_path.endswith(suffix)
                       for suffix in cls.exempt_suffixes)

    def emit(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(Finding(
            code=self.code,
            rule=self.name,
            message=message,
            path=self.context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
        ))

    def run(self, tree: ast.Module) -> List[Finding]:
        """Visit the module and return the findings."""
        self.visit(tree)
        return self.findings


# Populated only at import time by @rule, then read-only: identical in
# every process, so exempt from the per-process-state rule.
_REGISTRY: Dict[str, Type[Rule]] = {}  # physlint: disable=RPR601


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` by its code."""
    if not _CODE_RE.match(cls.code):
        raise ConfigurationError(
            f"rule {cls.__name__} has invalid code {cls.code!r}; "
            "expected the form RPRxxx")
    if not cls.name:
        raise ConfigurationError(
            f"rule {cls.__name__} must set a short name")
    if cls.code in _REGISTRY:
        raise ConfigurationError(
            f"duplicate rule code {cls.code}: {cls.__name__} and "
            f"{_REGISTRY[cls.code].__name__}")
    _REGISTRY[cls.code] = cls
    return cls


def available_rules() -> Dict[str, Type[Rule]]:
    """All registered rules, keyed by code (sorted copy)."""
    return dict(sorted(_REGISTRY.items()))


def _match_codes(code: str, patterns: Sequence[str]) -> bool:
    """flake8-style prefix matching: ``RPR2`` matches ``RPR201``."""
    return any(code.startswith(pattern) for pattern in patterns)


def _parse_code_list(text: str) -> Tuple[str, ...]:
    return tuple(part.strip().upper() for part in text.split(",")
                 if part.strip())


def _suppressed_codes(line: str) -> Tuple[str, ...]:
    """Codes disabled by a same-line ``# physlint: disable=`` comment."""
    match = _DISABLE_RE.search(line)
    if match is None:
        return ()
    return _parse_code_list(match.group(1))


def _file_suppressed_codes(source: str) -> Tuple[str, ...]:
    """Codes disabled for the whole file by ``disable-file`` comments."""
    codes: List[str] = []
    for match in _DISABLE_FILE_RE.finditer(source):
        codes.extend(_parse_code_list(match.group(1)))
    return tuple(codes)


def extract_suppressions(source: str,
                         ) -> Tuple[Tuple[str, ...],
                                    Dict[int, Tuple[str, ...]]]:
    """The file's suppression state, as serializable maps.

    Returns ``(file codes, {1-based line: same-line codes})`` — the
    form the incremental cache stores so whole-program findings can be
    suppression-filtered without re-reading the file.
    """
    file_codes = _file_suppressed_codes(source)
    line_codes: Dict[int, Tuple[str, ...]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        codes = _suppressed_codes(line)
        if codes:
            line_codes[number] = codes
    return file_codes, line_codes


def suppressed_by_maps(finding: Finding,
                       file_codes: Tuple[str, ...],
                       line_codes: Dict[int, Tuple[str, ...]]) -> bool:
    """Whether the suppression maps silence ``finding``."""
    if _match_codes(finding.code, file_codes) or "ALL" in file_codes:
        return True
    codes = line_codes.get(finding.line, ())
    return _match_codes(finding.code, codes) or "ALL" in codes


def _selected(finding: Finding, select: Tuple[str, ...],
              ignore: Tuple[str, ...]) -> bool:
    if finding.code == PARSE_ERROR_CODE:
        return not _match_codes(finding.code, ignore)
    if select and not _match_codes(finding.code, select):
        return False
    return not _match_codes(finding.code, ignore)


def validate_code_patterns(patterns: Iterable[str]) -> Tuple[str, ...]:
    """Normalize ``--select``/``--ignore`` patterns, rejecting junk."""
    normalized = []
    for pattern in patterns:
        pattern = pattern.strip().upper()
        if not pattern:
            continue
        if not re.match(r"^RPR\d{0,3}$", pattern):
            raise ConfigurationError(
                f"invalid rule code pattern {pattern!r}; expected "
                "RPR, RPR1, RPR10, or a full code like RPR101")
        normalized.append(pattern)
    return tuple(normalized)


@dataclass
class FileAnalysis:
    """The cacheable result of running every per-file rule on a file.

    ``findings`` are post-suppression but *pre* ``--select``/
    ``--ignore`` — selection is cheap and run-specific, so the cache
    stores the superset and the engine filters on the way out.
    :data:`PARSE_ERROR_CODE` findings are never suppressible: a file
    that does not parse cannot be trusted to have meant its own
    suppression comments.

    Attributes:
        context: The :class:`LintContext` the rules saw.
        tree: Parsed module, or None when the file failed to parse.
        findings: Per-file findings, suppressed entries removed.
        file_codes: File-level suppression codes.
        line_codes: Same-line suppression codes, by 1-based line.
    """

    context: LintContext
    tree: Optional[ast.Module]
    findings: List[Finding]
    file_codes: Tuple[str, ...]
    line_codes: Dict[int, Tuple[str, ...]]


def analyze_source(source: str, path: str) -> FileAnalysis:
    """Run every applicable per-file rule on one source string."""
    posix_path = path.replace(os.sep, "/")
    context = LintContext(
        path=path,
        posix_path=posix_path,
        source=source,
        lines=tuple(source.splitlines()),
    )
    file_codes, line_codes = extract_suppressions(source)
    try:
        tree: Optional[ast.Module] = ast.parse(source, filename=path)
    except SyntaxError as error:
        findings = [Finding(
            code=PARSE_ERROR_CODE,
            rule="parse-error",
            message=f"file does not parse: {error.msg}",
            path=path,
            line=error.lineno or 1,
            column=(error.offset or 0) + 1,
        )]
        return FileAnalysis(context, None, findings,
                            file_codes, line_codes)
    findings = []
    for rule_cls in _REGISTRY.values():
        if not rule_cls.applies_to(posix_path):
            continue
        findings.extend(rule_cls(context).run(tree))
    findings = [f for f in findings
                if not suppressed_by_maps(f, file_codes, line_codes)]
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return FileAnalysis(context, tree, findings,
                        file_codes, line_codes)


def lint_source(source: str, path: str,
                select: Tuple[str, ...] = (),
                ignore: Tuple[str, ...] = ()) -> List[Finding]:
    """Lint one already-read source string."""
    analysis = analyze_source(source, path)
    return [f for f in analysis.findings
            if _selected(f, select, ignore)]


def lint_file(path: str,
              select: Tuple[str, ...] = (),
              ignore: Tuple[str, ...] = ()) -> List[Finding]:
    """Lint one file on disk."""
    with tokenize.open(path) as handle:
        source = handle.read()
    return lint_source(source, path, select=select, ignore=ignore)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git"))
                collected.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py"))
        elif path.endswith(".py"):
            collected.append(path)
        elif not os.path.exists(path):
            raise ConfigurationError(f"no such file or directory: {path}")
    return collected


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint files and directories; the main library entry point.

    Args:
        paths: Files and/or directories (directories are walked for
            ``.py`` files).
        select: Optional code prefixes to restrict the run to.
        ignore: Optional code prefixes to drop from the results.

    Returns:
        All findings, sorted by ``(path, line, column, code)``.
    """
    select_codes = validate_code_patterns(select or ())
    ignore_codes = validate_code_patterns(ignore or ())
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, select=select_codes,
                                  ignore=ignore_codes))
    return findings
