"""The incremental analysis cache.

``physlint`` v2 analyzes each file once and remembers the result: the
per-file findings (post-suppression, pre-select), the suppression
maps, and the whole-program :class:`~.project.FileSummary`.  Entries
are keyed by the file's posix path and a blake2b digest of its
*content*, so touching a file's mtime without changing it costs
nothing, and the whole-program rules re-run every time from the cached
summaries without re-parsing a single unchanged file.

The cache is invalidated wholesale by a *salt* derived from the engine
version and the registered rule set — adding a rule, or changing the
analysis in a way that bumps :data:`CACHE_VERSION`, discards stale
entries instead of serving findings a newer engine would not produce.

Corrupt, unreadable, or foreign cache files are treated as empty: the
cache can only ever cost a re-analysis, never a wrong result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional, Set

#: Bump when the analysis semantics change in a way the rule list
#: alone does not capture (e.g. the unit vocabulary grows).
CACHE_VERSION = 1


def content_digest(source: str) -> str:
    """The blake2b content key of one file's text."""
    return hashlib.blake2b(source.encode("utf-8"),
                           digest_size=16).hexdigest()


def engine_salt(rule_codes: Any) -> str:
    """The whole-cache invalidation key for a rule set."""
    payload = json.dumps([CACHE_VERSION, sorted(rule_codes)])
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=8).hexdigest()


class AnalysisCache:
    """Per-file analysis results, persisted as one JSON document.

    Usage: :meth:`load`, then :meth:`lookup`/:meth:`store` per file,
    then :meth:`save`.  Only entries touched during the run are
    written back, so deleting a tree also shrinks its cache.
    """

    def __init__(self, salt: str) -> None:
        self.salt = salt
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._touched: Set[str] = set()

    @classmethod
    def load(cls, path: Optional[str], salt: str) -> "AnalysisCache":
        """Read a cache file; any problem yields an empty cache."""
        cache = cls(salt)
        if path is None or not os.path.exists(path):
            return cache
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict) \
                or payload.get("salt") != salt:
            return cache
        entries = payload.get("entries")
        if isinstance(entries, dict):
            cache.entries = {
                key: value for key, value in entries.items()
                if isinstance(value, dict) and "digest" in value}
        return cache

    def lookup(self, posix_path: str,
               digest: str) -> Optional[Dict[str, Any]]:
        """The stored entry for an unchanged file, else None.

        Counts a hit or a miss either way; the counters are how tests
        assert the "second run re-parses zero files" property.
        """
        self._touched.add(posix_path)
        entry = self.entries.get(posix_path)
        if entry is not None and entry.get("digest") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, posix_path: str, digest: str,
              payload: Dict[str, Any]) -> None:
        """Record a fresh analysis for one file."""
        self._touched.add(posix_path)
        entry = dict(payload)
        entry["digest"] = digest
        self.entries[posix_path] = entry

    def save(self, path: Optional[str]) -> None:
        """Atomically persist the entries touched this run."""
        if path is None:
            return
        document = {
            "tool": "physlint",
            "salt": self.salt,
            "entries": {key: self.entries[key]
                        for key in sorted(self._touched)
                        if key in self.entries},
        }
        directory = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(directory, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w", dir=directory, suffix=".tmp",
                encoding="utf-8", delete=False)
            with handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(handle.name, path)
        except OSError:
            pass  # a cache that fails to persist is just cold


__all__ = [
    "CACHE_VERSION",
    "AnalysisCache",
    "content_digest",
    "engine_salt",
]
