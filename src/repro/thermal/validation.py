"""Analytic validation of the package network: the 1-D stack limit.

Under uniform chip power, no leakage, no TEC drive, and a laterally
isothermal approximation, the package reduces to a series resistance
chain: every layer interface temperature follows from the heat flow and
the layer conductances.  Because each layer is taken isothermal over its
*full* footprint, constriction/spreading resistance is ignored, making
this a strict lower bound on the real junction temperature — the full
3-D network must sit at or above it, and approach it as lateral
gradients vanish.  The test suite enforces exactly that bracketing.

This also yields the back-of-envelope quantities thermal engineers use
(junction-to-ambient resistance, per-layer temperature drops), exposed
as a readable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError
from ..fan import HeatSinkFanConductance
from ..materials import LayerRole, PackageStack


@dataclass
class StackProfile:
    """Analytic 1-D temperatures through the package.

    Attributes:
        layer_temperatures: Mid-plane temperature of each layer, K,
            bottom to top, keyed by layer name.
        junction_temperature: Chip mid-plane temperature, K.
        sink_to_ambient_drop: Temperature drop across the convection
            interface, K.
        junction_to_ambient_resistance: Total theta_JA, K/W.
    """

    layer_temperatures: Dict[str, float]
    junction_temperature: float
    sink_to_ambient_drop: float
    junction_to_ambient_resistance: float


def layer_vertical_resistances(stack: PackageStack) -> Dict[str, float]:
    """Through-thickness resistance of each layer over its own area, K/W."""
    out: Dict[str, float] = {}
    for layer in stack:
        out[layer.name] = layer.thickness / (
            layer.material.conductivity * layer.footprint_area)
    return out


def one_dimensional_stack_profile(
    stack: PackageStack,
    power: float,
    omega: float,
    ambient: float,
    sink_conductance: HeatSinkFanConductance = None,
) -> StackProfile:
    """Series-chain temperatures, K, for uniform chip power, W,
    laterally isothermal, at fan speed ``omega``, rad/s.

    Heat flows from the chip *upward* only (the downward PCB path is
    ignored, matching its negligible share in the full model).  Layers
    below the chip are reported at the chip temperature.  Each layer
    contributes half its own resistance on each side of its mid-plane.
    """
    if power < 0.0:
        raise ConfigurationError(f"power must be >= 0, got {power}")
    if ambient <= 0.0:
        raise ConfigurationError("ambient must be in kelvin (> 0)")
    sink_conductance = sink_conductance or HeatSinkFanConductance()

    layers = stack.layers
    chip_index = next(i for i, l in enumerate(layers)
                      if l.role is LayerRole.CHIP)
    resistances = layer_vertical_resistances(stack)

    g_amb = sink_conductance.conductance(omega)
    sink_drop = power / g_amb

    # Walk down from ambient to each layer mid-plane.
    temperatures: Dict[str, float] = {}
    # Temperature at the top surface of the sink:
    running = ambient + sink_drop
    for layer in reversed(layers[chip_index:]):
        half = resistances[layer.name] / 2.0
        running += power * half          # top surface -> mid-plane
        temperatures[layer.name] = running
        running += power * half          # mid-plane -> bottom surface
    junction = temperatures[layers[chip_index].name]
    for layer in layers[:chip_index]:
        temperatures[layer.name] = junction

    theta_ja = (junction - ambient) / power if power > 0.0 \
        else float("nan")
    return StackProfile(
        layer_temperatures=temperatures,
        junction_temperature=junction,
        sink_to_ambient_drop=sink_drop,
        junction_to_ambient_resistance=theta_ja)


def format_stack_profile(profile: StackProfile,
                         stack: PackageStack) -> str:
    """Render the analytic profile as a readable table."""
    lines: List[str] = [
        f"theta_JA = "
        f"{profile.junction_to_ambient_resistance:.3f} K/W, "
        f"sink-to-ambient drop = {profile.sink_to_ambient_drop:.2f} K",
        f"{'layer':<12}{'T mid-plane (K)':>17}",
        "-" * 29,
    ]
    for layer in reversed(stack.layers):
        lines.append(
            f"{layer.name:<12}"
            f"{profile.layer_temperatures[layer.name]:>17.2f}")
    return "\n".join(lines)
