"""Transient thermal simulation (backward Euler).

The paper's analysis is steady-state, but two of its discussion points are
inherently transient: the thermal-runaway trajectory at insufficient
cooling, and the transient TEC boost of Section 6.2 ("increase I*_TEC by
about 1 A for 1 s" — the Peltier effect acts immediately while Joule
heating arrives with the thermal time constant).  This solver supports
both, plus the threshold/hysteresis controllers from the related work.

Discretization: ``C dT/dt = P - G T`` stepped implicitly as

    (C/dt + G + D_n) T_{n+1} = (C/dt) T_n + rhs_n

with the leakage Taylor expansion and the operating point (omega, I)
refreshed at every step (semi-implicit in the nonlinear terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from ..errors import ConfigurationError
from ..leakage import CellLeakageModel, tangent_linearization
from .assembly import PackageThermalModel

ScalarSchedule = Union[float, Callable[[float], float]]
PowerSchedule = Union[np.ndarray, Callable[[float], np.ndarray]]


@dataclass
class TransientResult:
    """Time series produced by :func:`simulate_transient`.

    Attributes:
        times: Sample times, s (length = steps + 1, including t = 0).
        max_chip_temperature: 𝒯(t) trace, K.
        mean_chip_temperature: Average chip temperature trace, K.
        leakage_power: Chip leakage trace, W.
        final_temperatures: Full node vector at the last computed step, K.
        runaway: True if the ceiling was crossed and integration stopped.
        runaway_time: Time of the crossing, s (None if no runaway).
    """

    times: np.ndarray
    max_chip_temperature: np.ndarray
    mean_chip_temperature: np.ndarray
    leakage_power: np.ndarray
    final_temperatures: np.ndarray
    runaway: bool
    runaway_time: Optional[float]

    @property
    def settled_temperature(self) -> float:
        """Final 𝒯 sample, K (the steady value if the run settled)."""
        return float(self.max_chip_temperature[-1])


def _schedule_value(schedule: ScalarSchedule, t: float) -> float:
    return float(schedule(t)) if callable(schedule) else float(schedule)


def _power_value(schedule: PowerSchedule, t: float) -> np.ndarray:
    if callable(schedule):
        return np.asarray(schedule(t), dtype=float)
    return np.asarray(schedule, dtype=float)


def simulate_transient(
    model: PackageThermalModel,
    duration: float,
    dt: float,
    omega: ScalarSchedule,
    current: ScalarSchedule,
    dynamic_cell_power: PowerSchedule,
    leakage: Optional[CellLeakageModel] = None,
    initial_temperatures: Optional[np.ndarray] = None,
    sink_heat: ScalarSchedule = 0.0,
) -> TransientResult:
    """Integrate the package thermals over ``[0, duration]``.

    ``omega`` (rad/s), ``current`` (A) and ``dynamic_cell_power`` (W
    per cell) may be constants or callables of time in s (controller
    schedules); ``initial_temperatures`` is in K.  Integration stops early,
    with ``runaway=True``, if any temperature crosses the model's runaway
    ceiling — the transient picture of the Section 6.2 feedback loop.
    """
    if duration <= 0.0 or dt <= 0.0:
        raise ConfigurationError("duration and dt must be positive")
    if dt > duration:
        raise ConfigurationError("dt must not exceed duration")

    n = model.network.node_count
    ncell = model.grid.cell_count
    capacities = model.network.heat_capacities()
    if (capacities <= 0.0).any():
        raise ConfigurationError(
            "Transient simulation requires positive heat capacities on "
            "every node")

    if initial_temperatures is None:
        temps = np.full(n, model.config.ambient, dtype=float)
    else:
        temps = np.asarray(initial_temperatures, dtype=float).copy()
        if temps.shape != (n,):
            raise ConfigurationError(
                f"initial_temperatures must have shape ({n},)")

    steps = int(round(duration / dt))
    times: List[float] = [0.0]
    zeros = np.zeros(ncell, dtype=float)
    chip0 = model.chip_temperatures(temps)
    max_trace = [float(chip0.max())]
    mean_trace = [float(chip0.mean())]
    leak_trace = [leakage.total_power(chip0) if leakage else 0.0]
    c_over_dt = capacities / dt
    network = model.network
    runaway = False
    runaway_time: Optional[float] = None

    for step in range(1, steps + 1):
        t = step * dt
        omega_t = _schedule_value(omega, t)
        current_t = _schedule_value(current, t)
        power_t = _power_value(dynamic_cell_power, t)
        chip = model.chip_temperatures(temps)
        if leakage is not None:
            taylor = tangent_linearization(leakage, chip)
            slope, const = taylor.a, taylor.constant_term()
        else:
            slope, const = zeros, zeros
        diag, rhs = model.overlays(
            omega_t, current_t, power_t, slope, const,
            sink_heat=_schedule_value(sink_heat, t))
        # Backward-Euler step through the build-once operator: the
        # capacity term rides on the diagonal overlay, so constant
        # schedules reuse one cached factorization across all steps.
        temps = network.solve(diag + c_over_dt,
                              rhs + c_over_dt * temps)

        chip = model.chip_temperatures(temps)
        times.append(t)
        max_trace.append(float(chip.max()))
        mean_trace.append(float(chip.mean()))
        leak_trace.append(leakage.total_power(chip) if leakage else 0.0)
        if float(temps.max()) > model.config.runaway_ceiling:
            runaway = True
            runaway_time = t
            break

    return TransientResult(
        times=np.array(times),
        max_chip_temperature=np.array(max_trace),
        mean_chip_temperature=np.array(mean_trace),
        leakage_power=np.array(leak_trace),
        final_temperatures=temps,
        runaway=runaway,
        runaway_time=runaway_time,
    )
