"""Thermal time-constant extraction.

The package's transient behaviour is governed by the eigenvalues of
``C^{-1} G``: each mode decays with time constant ``tau = 1/lambda``.
The spread — milliseconds for the thin die, seconds for the copper sink
— is exactly why the paper's transient-boost trick works (the Peltier
effect acts before the slow modes respond to the extra Joule heat) and
why OFTEC's few-hundred-ms runtime is fast *enough* for interval
control.  :func:`extract_time_constants` computes the dominant modes via
a symmetric generalized eigenproblem on the static network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import eigsh

from ..errors import ConfigurationError
from .assembly import PackageThermalModel


@dataclass
class TimeConstantAnalysis:
    """Dominant thermal modes of the package.

    Attributes:
        time_constants: Modal time constants, s, slowest first.
        omega: Fan speed the sink coupling was evaluated at, rad/s.
        slowest: The package-level settling constant, s.
        fastest_extracted: The fastest extracted mode, s (not the
            absolute fastest of the system — only ``modes`` were asked
            for).
    """

    time_constants: np.ndarray
    omega: float

    @property
    def slowest(self) -> float:
        return float(self.time_constants[0])

    @property
    def fastest_extracted(self) -> float:
        return float(self.time_constants[-1])


def extract_time_constants(
    model: PackageThermalModel,
    omega: float,
    modes: int = 6,
) -> TimeConstantAnalysis:
    """Extract the ``modes`` slowest thermal time constants, s.

    Solves the symmetric generalized eigenproblem ``G v = lambda C v``
    with ``G`` the static conductance matrix plus the fan-dependent
    ambient coupling at fan speed ``omega``, rad/s (zero TEC current,
    no leakage — the passive small-signal dynamics).
    """
    if modes < 1:
        raise ConfigurationError("modes must be >= 1")
    network = model.network
    n = network.node_count
    if modes >= n:
        raise ConfigurationError(
            f"modes must be < node count ({n}), got {modes}")
    capacities = network.heat_capacities()
    if (capacities <= 0.0).any():
        raise ConfigurationError(
            "Time-constant extraction needs positive heat capacities")

    # Ambient coupling at the requested fan speed (diagonal only; the
    # ambient node is a Dirichlet boundary).
    ncell = model.grid.cell_count
    zeros = np.zeros(ncell)
    diag, _rhs = model.overlays(omega, 0.0, zeros, zeros, zeros)
    matrix = (network.static_matrix + diags(diag)).tocsc()
    capacity_matrix = diags(capacities).tocsc()

    eigenvalues = eigsh(matrix, k=modes, M=capacity_matrix,
                        sigma=0.0, which="LM",
                        return_eigenvectors=False)
    rates = np.sort(np.real(eigenvalues))
    if (rates <= 0.0).any():
        raise ConfigurationError(
            "Non-positive decay rate extracted; the network is not "
            "properly grounded")
    taus = np.sort(1.0 / rates)[::-1]
    return TimeConstantAnalysis(time_constants=taus, omega=omega)


def boost_window_recommendation(
    analysis: TimeConstantAnalysis,
    die_fraction: float = 0.5,
) -> float:
    """A principled transient-boost duration, s.

    The boost should end well before the slow (sink) modes absorb the
    extra Joule heat: recommend ``die_fraction`` of the slowest
    extracted constant, floored at the fastest extracted mode (boosting
    shorter than the die's own response does nothing).
    """
    if not (0.0 < die_fraction <= 1.0):
        raise ConfigurationError("die_fraction must be in (0, 1]")
    window = die_fraction * analysis.slowest
    return max(window, analysis.fastest_extracted)
