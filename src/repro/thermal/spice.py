"""SPICE netlist export of the thermal-electrical dual circuit.

Section 4 of the paper builds on "the duality between thermal and
electrical phenomena": the package is an electrical circuit that "can be
easily analyzed by using well-known circuit laws (such as KVL and KCL)
and simulated with the aid of circuit simulators such as SPICE".  This
module makes that concrete: it emits a SPICE ``.op`` netlist whose node
voltages are the package's node temperatures at one linearized operating
point.

Element mapping (thermal -> electrical):

* node temperature (K)        -> node voltage (V)
* heat flow (W)               -> current (A)
* conductance g (W/K)         -> resistor of 1/g ohms
* ambient temperature         -> DC voltage source
* power injection p_i         -> current source into the node
* temperature-proportional    -> (possibly negative) resistor to the
  terms (Peltier, leakage)       0 V reference, exactly reproducing the
                                 diagonal overlay of the linear system
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..errors import ConfigurationError
from .assembly import PackageThermalModel


def export_spice_netlist(
    model: PackageThermalModel,
    omega: float,
    current: Union[float, np.ndarray],
    dynamic_cell_power: np.ndarray,
    leak_slope: Optional[np.ndarray] = None,
    leak_const: Optional[np.ndarray] = None,
    sink_heat: float = 0.0,
    title: str = "OFTEC package thermal network",
) -> str:
    """Render one linearized operating point as a SPICE netlist.

    ``omega`` is the fan speed, rad/s; ``current`` the TEC drive, A;
    ``dynamic_cell_power`` the per-cell map, W.

    The emitted circuit solves exactly the same linear system as
    :meth:`repro.thermal.ThermalNetwork.solve` with the overlays built
    from these arguments; running ``.op`` in any SPICE yields the node
    temperatures as voltages (node ``n<i>`` = network node ``i``).
    """
    ncell = model.grid.cell_count
    zeros = np.zeros(ncell)
    slope = zeros if leak_slope is None else np.asarray(leak_slope)
    const = zeros if leak_const is None else np.asarray(leak_const)
    diag, rhs = model.overlays(omega, current, dynamic_cell_power,
                               slope, const, sink_heat=sink_heat)

    network = model.network
    matrix = network.static_matrix.tocoo()
    ambient = model.config.ambient

    lines: List[str] = [
        f"* {title}",
        f"* nodes: {network.node_count}; omega = {omega:.3f} rad/s; "
        "temperatures appear as node voltages (kelvin)",
        f"VAMB amb 0 DC {ambient:.6g}",
    ]

    # Static two-terminal conductances (upper triangle of the off-
    # diagonal entries; the assembly stores g as -g off-diagonal).
    emitted = 0
    for i, j, value in zip(matrix.row, matrix.col, matrix.data):
        if i < j and value < 0.0:
            emitted += 1
            lines.append(
                f"R{emitted} n{i} n{j} {-1.0 / value:.6g}")

    # Static grounded conductances (the board path): the static matrix
    # diagonal holds sum(g_ij) + g_ground; recover g_ground as the
    # difference and tie it to the ambient source.
    dense_diag = np.asarray(matrix.tocsr().diagonal())
    offdiag_sum = np.zeros(network.node_count)
    for i, j, value in zip(matrix.row, matrix.col, matrix.data):
        if i != j:
            offdiag_sum[i] += -value
    ground = dense_diag - offdiag_sum
    for i, g in enumerate(ground):
        if g > 1e-15:
            emitted += 1
            lines.append(f"R{emitted} n{i} amb {1.0 / g:.6g}")

    # Per-evaluation diagonal overlay.  The sink-to-ambient share comes
    # with a matching rhs term g*T_amb — emit it as a resistor to amb;
    # everything else (leakage slopes, Peltier terms) references 0 V.
    g_total = model.sink_conductance.conductance(omega)
    sink_g = np.zeros(network.node_count)
    np.add.at(sink_g, model._sink_amb_nodes,
              g_total * model._sink_amb_weights)
    other_diag = diag - sink_g
    residual_rhs = rhs - sink_g * ambient \
        - model._static_amb_g * ambient
    for i, g in enumerate(sink_g):
        if g > 1e-15:
            emitted += 1
            lines.append(f"R{emitted} n{i} amb {1.0 / g:.6g}")
    for i, d in enumerate(other_diag):
        if abs(d) > 1e-15:
            emitted += 1
            lines.append(f"R{emitted} n{i} 0 {1.0 / d:.6g}")

    # Residual right-hand side: pure current injections.
    sources = 0
    for i, p in enumerate(residual_rhs):
        if abs(p) > 1e-15:
            sources += 1
            lines.append(f"I{sources} 0 n{i} DC {p:.6g}")

    lines.append(".op")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def parse_netlist_system(netlist: str, node_count: int):
    """Rebuild the (A, b) system from an exported netlist.

    Used for round-trip validation (and by tests): reconstructs the
    conductance matrix and RHS that the netlist encodes, so the SPICE
    export can be verified against the network solver without an actual
    SPICE installation.
    """
    matrix = np.zeros((node_count, node_count))
    rhs = np.zeros(node_count)
    ambient = None
    for line in netlist.splitlines():
        fields = line.split()
        if not fields or fields[0].startswith("*"):
            continue
        name = fields[0].upper()
        if name == "VAMB":
            ambient = float(fields[4])
        elif name.startswith("R"):
            node_a, node_b, value = fields[1], fields[2], float(fields[3])
            g = 1.0 / value
            for node in (node_a, node_b):
                if node.startswith("n"):
                    matrix[int(node[1:]), int(node[1:])] += g
            if node_a.startswith("n") and node_b.startswith("n"):
                i, j = int(node_a[1:]), int(node_b[1:])
                matrix[i, j] -= g
                matrix[j, i] -= g
            elif node_b == "amb" and node_a.startswith("n"):
                if ambient is None:
                    raise ConfigurationError(
                        "Resistor to amb before VAMB definition")
                rhs[int(node_a[1:])] += g * ambient
            # resistors to node 0 contribute diagonal only
        elif name.startswith("I"):
            target = fields[2]
            if target.startswith("n"):
                rhs[int(target[1:])] += float(fields[4])
    return matrix, rhs
