"""Adjoint gradients of a converged steady state.

The steady-state system is linear in temperature,
``A(x) T = s(x)`` with ``A = G_static + diag(d(x))`` and
``x = (omega, I_TEC)``, so for any scalar output ``f(T, x)`` the
adjoint identity

    df/dx = df/dx|_explicit + lambda^T (ds/dx - (dd/dx) * T),
    A^T lambda = df/dT

prices a full gradient at *one* transposed back-substitution against
the same LU factor the forward solve produced — instead of the
~2 * n_vars forward solves a finite-difference stencil spends per SQP
iteration.  Both objectives (max chip temperature, and system power
``P_leak + P_TEC``) share a single ``(n, 2)`` adjoint block solve.

Leakage note: the forward path converges a fixed point of the Taylor
relinearization loop (Equation 4).  At convergence the nonlinear
residual's temperature Jacobian is exactly ``A`` built with the
tangent slope ``a = beta * P_leak(T*)`` at the *converged* chip
temperatures, so this module relinearizes there before factoring.
That overlay usually differs from the last forward iterate's (whose
tangent point lagged one iteration behind), costing at most one extra
LRU-cached factorization per operating point; leakage-free problems
rebuild the identical overlay bytes and hit the forward factor
directly.  The linearization-point constant ``b - a*t_ref`` is held
fixed under differentiation — it is data of the linearization, not a
function of ``x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..leakage.linearize import tangent_linearization
from .assembly import PackageThermalModel
from .solver import SteadyStateResult

__all__ = ["SteadyStateGradients", "steady_state_gradients"]


@dataclass(frozen=True)
class SteadyStateGradients:
    """d/d(omega, I_TEC) of the two objective ingredients.

    Attributes:
        d_temp_omega: ``d(max chip T)/d(omega)``, K/(rad/s).
        d_temp_current: ``d(max chip T)/d(I_TEC)``, K/A.
        d_power_omega: ``d(P_leak + P_TEC)/d(omega)``, W/(rad/s) —
            system power only; the caller adds the explicit fan term
            ``dP_fan/d(omega)``.
        d_power_current: ``d(P_leak + P_TEC)/d(I_TEC)``, W/A.
    """

    d_temp_omega: float
    d_temp_current: float
    d_power_omega: float
    d_power_current: float


def steady_state_gradients(
    model: PackageThermalModel,
    result: SteadyStateResult,
    dynamic_cell_power: np.ndarray,
    leakage=None,
    sink_heat: float = 0.0,
    sink_heat_gradient: float = 0.0,
) -> SteadyStateGradients:
    """Adjoint gradients at a converged :class:`SteadyStateResult`.

    Args:
        model: The package model the result was solved on.
        result: A converged steady state (carries the full node
            temperature vector and the operating point).
        dynamic_cell_power: The per-chip-cell dynamic power the forward
            solve used, W.
        leakage: The leakage model of the forward solve (None for
            leakage-free problems); relinearized at the converged chip
            temperatures so the adjoint matrix is the exact fixed-point
            Jacobian.
        sink_heat: Recirculated fan heat deposited on the sink during
            the forward solve, W.
        sink_heat_gradient: ``d(sink_heat)/d(omega)``, W/(rad/s).

    Returns one transposed ``(n, 2)`` block solve's worth of gradients
    (counted in :attr:`~repro.thermal.OperatorStats.adjoint_solves`).
    """
    temps = result.temperatures
    chip = model.chip_temperatures(temps)
    n_cell = chip.shape[0]
    if leakage is not None:
        taylor = tangent_linearization(leakage, chip)
        leak_slope = np.broadcast_to(
            np.asarray(taylor.a, dtype=float), (n_cell,))
        leak_const = np.broadcast_to(
            np.asarray(taylor.constant_term(), dtype=float), (n_cell,))
    else:
        leak_slope = np.zeros(n_cell)
        leak_const = np.zeros(n_cell)

    # Both adjoint right-hand sides, built before overlays() so the
    # shared overlay buffers stay valid through the block solve.
    block = np.zeros((model.network.node_count, 2))
    hottest = model.chip_nodes[int(np.argmax(chip))]
    block[hottest, 0] = 1.0
    block[:, 1] = model.power_temperature_gradient(result.current,
                                                  leak_slope)

    diag, _ = model.overlays(result.omega, result.current,
                             dynamic_cell_power, leak_slope,
                             leak_const, sink_heat=sink_heat)
    duals = model.network.operator.solve_adjoint(diag, block)

    f_omega = model.overlay_omega_gradient(
        result.omega, temps, sink_heat_gradient=sink_heat_gradient)
    f_current = model.overlay_current_gradient(result.current, temps)
    power_current = model.tec_power_current_gradient(result.current,
                                                     temps)
    return SteadyStateGradients(
        d_temp_omega=float(duals[:, 0] @ f_omega),
        d_temp_current=float(duals[:, 0] @ f_current),
        d_power_omega=float(duals[:, 1] @ f_omega),
        d_power_current=power_current + float(duals[:, 1] @ f_current),
    )
