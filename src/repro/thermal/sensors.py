"""On-die thermal sensors: the controller's real-world view.

The paper's controllers read the true maximum die temperature; real DTM
hardware reads a handful of noisy sensors at fixed locations and can
*underestimate* the hotspot (sensor aliasing).  This module models that
gap: sensors placed at unit centers (or explicit cells) return the local
cell temperature plus offset/noise, and a
:class:`SensorArray` reduces readings the way a DTM loop would.

Pairs naturally with the threshold/hysteresis controllers and the online
interval controller to study how much guard-band the sensor error forces
onto T_max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..geometry import CellCoverage


@dataclass(frozen=True)
class Sensor:
    """One thermal sensor.

    Attributes:
        name: Sensor label.
        cell: Flat grid-cell index the sensor samples.
        offset: Systematic calibration error, K (added to readings).
        noise_sigma: Gaussian read-noise standard deviation, K.
    """

    name: str
    cell: int
    offset: float = 0.0
    noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.cell < 0:
            raise ConfigurationError(
                f"Sensor {self.name!r}: cell must be >= 0")
        if self.noise_sigma < 0.0:
            raise ConfigurationError(
                f"Sensor {self.name!r}: noise_sigma must be >= 0")


class SensorArray:
    """A fixed set of sensors over the chip grid."""

    def __init__(self, sensors: Sequence[Sensor], cell_count: int,
                 seed: int = 0):
        if not sensors:
            raise ConfigurationError("SensorArray needs sensors")
        names = [s.name for s in sensors]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"Duplicate sensor names: {names}")
        for sensor in sensors:
            if sensor.cell >= cell_count:
                raise ConfigurationError(
                    f"Sensor {sensor.name!r}: cell {sensor.cell} "
                    f"outside grid of {cell_count} cells")
        self.sensors: List[Sensor] = list(sensors)
        self.cell_count = cell_count
        self._rng = np.random.default_rng(seed)

    @classmethod
    def at_unit_centers(cls, coverage: CellCoverage,
                        units: Sequence[str],
                        offset: float = 0.0,
                        noise_sigma: float = 0.0,
                        seed: int = 0) -> "SensorArray":
        """Place one sensor at the center cell of each named unit."""
        grid = coverage.grid
        sensors = []
        for unit in units:
            rect = coverage.floorplan[unit].rect
            cx, cy = rect.center
            ix = min(int(cx / grid.dx), grid.nx - 1)
            iy = min(int(cy / grid.dy), grid.ny - 1)
            sensors.append(Sensor(
                name=f"sense_{unit}",
                cell=grid.flat_index(ix, iy),
                offset=offset, noise_sigma=noise_sigma))
        return cls(sensors, grid.cell_count, seed=seed)

    def read(self, chip_temperatures: np.ndarray) -> Dict[str, float]:
        """Sample every sensor against a chip temperature field."""
        temps = np.asarray(chip_temperatures, dtype=float)
        if temps.shape != (self.cell_count,):
            raise ConfigurationError(
                f"Expected {self.cell_count} cell temperatures, got "
                f"{temps.shape}")
        readings: Dict[str, float] = {}
        for sensor in self.sensors:
            value = float(temps[sensor.cell]) + sensor.offset
            if sensor.noise_sigma > 0.0:
                value += float(self._rng.normal(0.0,
                                                sensor.noise_sigma))
            readings[sensor.name] = value
        return readings

    def hottest_reading(self, chip_temperatures: np.ndarray) -> float:
        """The max-of-sensors reduction a DTM loop acts on, K
        (``chip_temperatures`` is the per-cell field in K)."""
        return max(self.read(chip_temperatures).values())

    def aliasing_error(self, chip_temperatures: np.ndarray) -> float:
        """True hotspot minus hottest reading, K (>= 0 means the
        sensors underestimate; computed noise-free)."""
        temps = np.asarray(chip_temperatures, dtype=float)
        if temps.shape != (self.cell_count,):
            raise ConfigurationError(
                f"Expected {self.cell_count} cell temperatures, got "
                f"{temps.shape}")
        noise_free = max(float(temps[s.cell]) + s.offset
                         for s in self.sensors)
        return float(temps.max()) - noise_free


def recommended_guard_band(array: SensorArray,
                           chip_fields: Sequence[np.ndarray],
                           quantile: float = 0.95) -> float:
    """Guard band (K) covering the observed aliasing errors.

    Given representative temperature fields (e.g. the steady states of
    a benchmark suite), returns the ``quantile`` of the aliasing error —
    the amount a DTM loop must subtract from T_max when trusting the
    sensors.
    """
    if not (0.0 < quantile <= 1.0):
        raise ConfigurationError("quantile must be in (0, 1]")
    if not chip_fields:
        raise ConfigurationError("Need at least one temperature field")
    errors = [array.aliasing_error(field) for field in chip_fields]
    return float(np.quantile(errors, quantile))
