"""Compact thermal-network substrate (Section 4 of the paper).

Implements the electrical-dual RC model: :class:`ThermalNetwork` is the
generic sparse node/conductance graph with a static base matrix and
per-evaluation diagonal/RHS overlays; :class:`PackageThermalModel`
(built by :func:`build_package_model`) instantiates the seven-layer
Figure 2 assembly — including the three TEC sub-layers of Figure 4 and the
fan-speed-dependent sink-to-ambient coupling of Equation (9) — and solves
the steady state ``G(omega) T = P(omega, I_TEC)`` with the leakage
relinearization loop and thermal-runaway detection.  A backward-Euler
transient solver supports the controller studies.
"""

from .network import ThermalNetwork, NodeKind, condition_estimate
from .operator import Factorization, OperatorStats, ThermalOperator
from .adjoint import SteadyStateGradients, steady_state_gradients
from .assembly import PackageThermalModel, build_package_model, \
    PackageModelConfig
from .solver import (
    SolveContext,
    SolveStats,
    SteadyStateResult,
    solve_steady_state,
    solve_steady_state_batch,
)
from .transient import TransientResult, simulate_transient
from .validation import (
    StackProfile,
    format_stack_profile,
    layer_vertical_resistances,
    one_dimensional_stack_profile,
)
from .spice import export_spice_netlist, parse_netlist_system
from .sensors import Sensor, SensorArray, recommended_guard_band
from .timeconstants import (
    TimeConstantAnalysis,
    boost_window_recommendation,
    extract_time_constants,
)

__all__ = [
    "ThermalNetwork",
    "NodeKind",
    "condition_estimate",
    "Factorization",
    "OperatorStats",
    "ThermalOperator",
    "PackageThermalModel",
    "build_package_model",
    "PackageModelConfig",
    "SolveContext",
    "SteadyStateGradients",
    "steady_state_gradients",
    "SteadyStateResult",
    "SolveStats",
    "solve_steady_state",
    "solve_steady_state_batch",
    "TransientResult",
    "simulate_transient",
    "StackProfile",
    "format_stack_profile",
    "layer_vertical_resistances",
    "one_dimensional_stack_profile",
    "export_spice_netlist",
    "parse_netlist_system",
    "Sensor",
    "SensorArray",
    "recommended_guard_band",
    "TimeConstantAnalysis",
    "boost_window_recommendation",
    "extract_time_constants",
]
