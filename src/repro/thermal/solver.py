"""Steady-state solve of ``G(omega) T = P(omega, I_TEC)`` (Constraint 14).

For fixed ``(omega, I_TEC)`` the system is linear in the temperatures
(Section 5.1: the Peltier and linearized-leakage terms fold into the
matrix), so one evaluation is a sparse solve.  Because the *linearization
point* of the leakage law matters, an outer loop re-expands the Taylor
series at the freshly solved chip temperatures until they stop moving —
reference [13]'s protocol, which typically converges in a handful of
iterations.  If the loop diverges, or the temperatures exceed the ceiling,
the evaluation reports **thermal runaway** (Section 6.2: the objective
"tends to infinity for small values of omega").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import (
    ConfigurationError,
    SingularNetworkError,
    ThermalRunawayError,
)
from ..leakage import CellLeakageModel, tangent_linearization
from ..obs import runtime as _obs
from ..obs.metrics import DEFAULT_COUNT_BUCKETS
from .assembly import PackageThermalModel
from .operator import ThermalOperator


@dataclass
class SolveContext:
    """Mutable per-problem solve state threaded through evaluations.

    Replaces the hidden warm-start state the evaluator used to keep in
    ``Evaluator._warm_chip``: the previous converged chip temperatures
    (the leakage linearization point that makes successive nearby
    queries converge in 1-2 iterations) live here explicitly, and the
    context hands out the network's build-once
    :class:`~repro.thermal.operator.ThermalOperator`.

    Attributes:
        model: The package model the context solves against.
        warm_chip: Chip-temperature vector (K) of the last successful
            solve, used as the next linearization point; ``None`` falls
            back to the ambient + 30 K cold start.
    """

    model: PackageThermalModel
    warm_chip: Optional[np.ndarray] = field(default=None)

    @classmethod
    def for_model(cls, model: PackageThermalModel) -> "SolveContext":
        """Fresh context bound to ``model``."""
        return cls(model=model)

    @property
    def operator(self) -> ThermalOperator:
        """The model's shared build-once/update-many solve engine."""
        return self.model.network.operator

    def reset(self) -> None:
        """Forget the warm linearization point (cold-start next solve)."""
        self.warm_chip = None


@dataclass
class SolveStats:
    """Diagnostics of one steady-state evaluation.

    Attributes:
        outer_iterations: Leakage relinearization iterations performed.
        linear_solves: Sparse linear solves performed.
        converged: Whether the relinearization loop met its tolerance.
        max_update: Final between-iteration chip-temperature change, K.
    """

    outer_iterations: int
    linear_solves: int
    converged: bool
    max_update: float


@dataclass
class SteadyStateResult:
    """Converged steady state of the package at one operating point.

    Attributes:
        temperatures: Full node-temperature vector, K.
        chip_temperatures: Per-chip-cell temperatures, K.
        max_chip_temperature: The paper's objective 𝒯 = max_i T_i over
            the chip layer, K.
        leakage_power: Total chip leakage at the converged temperatures
            (Equation 11), W.
        tec_power: Total TEC electrical power (Equation 12), W.
        tec_heat_absorbed: Heat pumped out of the cold side (Eq. 1 sum), W.
        tec_heat_released: Heat released at the hot side (Eq. 2 sum), W.
        omega: Fan speed of the evaluation, rad/s.
        current: TEC driving current of the evaluation, A (scalar
            or per-cell array for multi-channel drives).
        stats: Solver diagnostics.
    """

    temperatures: np.ndarray
    chip_temperatures: np.ndarray
    max_chip_temperature: float
    leakage_power: float
    tec_power: float
    tec_heat_absorbed: float
    tec_heat_released: float
    omega: float
    current: Union[float, np.ndarray]
    stats: SolveStats

    @property
    def mean_chip_temperature(self) -> float:
        """Area-weighted (uniform cells) average chip temperature, K."""
        return float(self.chip_temperatures.mean())


def solve_steady_state(
    model: PackageThermalModel,
    omega: float,
    current: Union[float, np.ndarray],
    dynamic_cell_power: np.ndarray,
    leakage: Optional[CellLeakageModel] = None,
    initial_guess: Optional[np.ndarray] = None,
    sink_heat: float = 0.0,
    context: Optional[SolveContext] = None,
) -> SteadyStateResult:
    """Solve the package steady state at one ``(omega, I_TEC)`` point.

    Args:
        model: Assembled package thermal model.
        omega: Fan speed, rad/s.
        current: TEC driving current, A (scalar, or per-cell array
            for independently-driven channels).
        dynamic_cell_power: Per-chip-cell dynamic power, W.
        leakage: Temperature-dependent chip leakage; ``None`` disables
            leakage entirely (useful for validation against analytic
            networks).
        initial_guess: Optional starting chip-temperature vector for the
            linearization point; overrides the context's warm point.
        sink_heat: Extra heat deposited on the sink surface (recirculated
            fan power), W.
        context: Optional :class:`SolveContext` carrying the warm
            linearization point across calls; updated in place on every
            successful solve.

    Raises:
        ThermalRunawayError: When no bounded steady state exists at this
            operating point.
    """
    config = model.config
    ncell = model.grid.cell_count
    zeros = np.zeros(ncell, dtype=float)

    if leakage is None:
        diag, rhs = model.overlays(omega, current, dynamic_cell_power,
                                   zeros, zeros, sink_heat=sink_heat)
        temps = _network_solve(model, diag, rhs, omega, current,
                               iteration=1)
        _check_physical(model, temps, omega, current, iteration=1)
        result = _package_result(model, temps, omega, current,
                                 leakage_power=0.0,
                                 stats=SolveStats(1, 1, True, 0.0))
        if context is not None:
            context.warm_chip = result.chip_temperatures
        return result

    if initial_guess is None and context is not None \
            and context.warm_chip is not None:
        initial_guess = context.warm_chip
    if initial_guess is not None:
        t_ref = np.asarray(initial_guess, dtype=float).copy()
        if t_ref.shape != (ncell,):
            raise ConfigurationError(
                f"initial_guess must have shape ({ncell},), got "
                f"{t_ref.shape}")
    else:
        t_ref = np.full(ncell, config.ambient + 30.0)

    temps = None
    previous_update = np.inf
    growth_strikes = 0
    for iteration in range(1, config.leak_max_iterations + 1):
        taylor = tangent_linearization(leakage, t_ref)
        diag, rhs = model.overlays(
            omega, current, dynamic_cell_power,
            leak_slope=taylor.a, leak_const=taylor.constant_term(),
            sink_heat=sink_heat)
        temps = _network_solve(model, diag, rhs, omega, current, iteration)
        _check_physical(model, temps, omega, current, iteration)
        chip = model.chip_temperatures(temps)
        update = float(np.max(np.abs(chip - t_ref)))
        if update < config.leak_tolerance:
            stats = SolveStats(iteration, iteration, True, update)
            if _obs.STATE.enabled:
                _obs.STATE.metrics.histogram(
                    "leakage.iterations",
                    buckets=DEFAULT_COUNT_BUCKETS).observe(iteration)
            leak_power = leakage.total_power(chip)
            result = _package_result(model, temps, omega, current,
                                     leak_power, stats)
            if context is not None:
                context.warm_chip = result.chip_temperatures
            return result
        # Divergence heuristic: monotonically growing updates mean the
        # leakage feedback gain exceeds unity — runaway.
        if update > previous_update * 1.0001:
            growth_strikes += 1
            if growth_strikes >= 3:
                if _obs.STATE.enabled:
                    _obs.STATE.tracer.event(
                        "leakage.diverged", iteration=iteration,
                        update_k=update)
                    _obs.STATE.metrics.counter(
                        "leakage.diverged").inc()
                raise ThermalRunawayError(
                    f"Leakage fixed point diverging at omega={omega:.1f}, "
                    f"I={_fmt_current(current)} (update {update:.2f} K "
                    "and growing)",
                    max_temperature=float(chip.max()))
        else:
            growth_strikes = 0
        previous_update = update
        t_ref = chip
    if _obs.STATE.enabled:
        _obs.STATE.tracer.event(
            "leakage.exhausted",
            iterations=config.leak_max_iterations)
        _obs.STATE.metrics.counter("leakage.diverged").inc()
    raise ThermalRunawayError(
        f"Leakage fixed point failed to converge within "
        f"{config.leak_max_iterations} iterations at omega={omega:.1f}, "
        f"I={_fmt_current(current)}",
        max_temperature=float(np.max(t_ref)))


def solve_steady_state_batch(
    model: PackageThermalModel,
    points: Sequence[Tuple[float, Union[float, np.ndarray]]],
    dynamic_cell_power: np.ndarray,
    leakage: Optional[CellLeakageModel] = None,
    sink_heats: Optional[Sequence[float]] = None,
    context: Optional[SolveContext] = None,
) -> List[Union[SteadyStateResult, ThermalRunawayError]]:
    """Solve many ``(omega, I_TEC)`` points against one power map.

    The multi-RHS entry point of the operator layer: without leakage the
    system matrix depends only on ``(omega, I)``, so points sharing an
    operating point are grouped and solved through one factorization
    with their RHS columns batched (sweep grids, lookup-table screens,
    per-workload heat maps).  With leakage each point runs the
    relinearization loop sequentially — in input order, warm-chaining
    through ``context`` exactly like repeated
    :func:`solve_steady_state` calls — and still reuses cached
    factorizations at repeated linearization points.

    Args:
        model: Assembled package thermal model.
        points: ``(omega, current)`` pairs, rad/s and A.
        dynamic_cell_power: Per-chip-cell dynamic power, W (shared by
            all points).
        leakage: Optional temperature-dependent chip leakage.
        sink_heats: Optional per-point sink heat, W (default 0).
        context: Optional warm-start context for the leakage path.

    Returns:
        One entry per point, in order: the
        :class:`SteadyStateResult`, or the
        :class:`~repro.errors.ThermalRunawayError` raised at that point
        (so one unbounded cell cannot abort a whole sweep).
    """
    count = len(points)
    if sink_heats is None:
        heats: Sequence[float] = [0.0] * count
    else:
        heats = sink_heats
        if len(heats) != count:
            raise ConfigurationError(
                f"sink_heats must have {count} entries, got {len(heats)}")

    results: List[Union[SteadyStateResult, ThermalRunawayError]] = \
        [None] * count  # type: ignore[list-item]

    if leakage is not None:
        for index, (omega, current) in enumerate(points):
            try:
                results[index] = solve_steady_state(
                    model, omega, current, dynamic_cell_power,
                    leakage=leakage, sink_heat=heats[index],
                    context=context)
            except ThermalRunawayError as err:
                results[index] = err
        return results

    ncell = model.grid.cell_count
    zeros = np.zeros(ncell, dtype=float)
    # Group points by the exact bytes of their diagonal overlay: equal
    # overlays share one factorization and back-substitute as one
    # multi-RHS block.
    groups: "dict[bytes, List[int]]" = {}
    diags_by_key: "dict[bytes, np.ndarray]" = {}
    rhs_list: List[np.ndarray] = []
    for index, (omega, current) in enumerate(points):
        diag, rhs = model.overlays(omega, current, dynamic_cell_power,
                                   zeros, zeros,
                                   sink_heat=heats[index])
        key = diag.tobytes()
        groups.setdefault(key, []).append(index)
        if key not in diags_by_key:
            diags_by_key[key] = diag.copy()
        rhs_list.append(rhs.copy())
    for key, members in groups.items():
        diag = diags_by_key[key]
        block = np.stack([rhs_list[i] for i in members], axis=1)
        temps_block = _network_solve_many(
            model, diag, block, points, members)
        for column, index in enumerate(members):
            omega, current = points[index]
            temps = temps_block[:, column]
            try:
                _check_physical(model, temps, omega, current,
                                iteration=1)
            except ThermalRunawayError as err:
                results[index] = err
                continue
            results[index] = _package_result(
                model, temps, omega, current, leakage_power=0.0,
                stats=SolveStats(1, 1, True, 0.0))
    if context is not None:
        for entry in reversed(results):
            if isinstance(entry, SteadyStateResult):
                context.warm_chip = entry.chip_temperatures
                break
    return results


def _network_solve_many(model: PackageThermalModel, diag: np.ndarray,
                        rhs_block: np.ndarray,
                        points: Sequence[Tuple[float,
                                               Union[float, np.ndarray]]],
                        members: Sequence[int]) -> np.ndarray:
    """One batched network solve with operating-point error context."""
    try:
        return model.network.solve_many(diag, rhs_block)
    except SingularNetworkError as exc:
        omega, current = points[members[0]]
        raise SingularNetworkError(
            f"{exc} during batched steady-state solve at "
            f"omega={omega:.1f}, I={_fmt_current(current)} "
            f"({len(members)} grouped points)",
            condition_estimate=exc.condition_estimate) from exc


def _network_solve(model: PackageThermalModel, diag: np.ndarray,
                   rhs: np.ndarray, omega: float,
                   current: Union[float, np.ndarray],
                   iteration: int) -> np.ndarray:
    """One network solve; re-raises singularities with operating-point
    context (omega in rad/s, current in A) chained onto the original."""
    try:
        return model.network.solve(diag, rhs)
    except SingularNetworkError as exc:
        raise SingularNetworkError(
            f"{exc} during steady-state solve at omega={omega:.1f}, "
            f"I={_fmt_current(current)} (leakage iteration {iteration})",
            condition_estimate=exc.condition_estimate) from exc


def _fmt_current(current: Union[float, np.ndarray]) -> str:
    """Render a scalar or per-cell current for error messages."""
    arr = np.asarray(current, dtype=float)
    if arr.ndim == 0:
        return f"{float(arr):.2f}"
    return f"[{arr.min():.2f}..{arr.max():.2f}]"


def _check_physical(model: PackageThermalModel, temps: np.ndarray,
                    omega: float, current: Union[float, np.ndarray],
                    iteration: int) -> None:
    """Reject solutions outside the physical envelope as runaway."""
    config = model.config
    t_max = float(temps.max())
    t_min = float(temps.min())
    if t_max > config.runaway_ceiling:
        raise ThermalRunawayError(
            f"Temperature {t_max:.1f} K exceeds the runaway ceiling "
            f"({config.runaway_ceiling:.0f} K) at omega={omega:.1f}, "
            f"I={_fmt_current(current)} (iteration {iteration})",
            max_temperature=t_max)
    if t_min < config.temperature_floor:
        raise ThermalRunawayError(
            f"Temperature {t_min:.1f} K fell below the physical floor "
            f"({config.temperature_floor:.0f} K) at omega={omega:.1f}, "
            f"I={_fmt_current(current)}: the linearized network has "
            "left its "
            "validity range",
            max_temperature=t_max)


def _package_result(model: PackageThermalModel, temps: np.ndarray,
                    omega: float, current: Union[float, np.ndarray],
                    leakage_power: float,
                    stats: SolveStats) -> SteadyStateResult:
    chip = model.chip_temperatures(temps)
    tec_power = 0.0
    q_abs = 0.0
    q_rel = 0.0
    if model.tec_array is not None:
        cold, hot = model.tec_face_temperatures(temps)
        tec_power = model.tec_array.total_power(cold, hot, current)
        q_abs = model.tec_array.total_heat_absorbed(cold, hot, current)
        q_rel = model.tec_array.total_heat_released(cold, hot, current)
    return SteadyStateResult(
        temperatures=temps,
        chip_temperatures=chip,
        max_chip_temperature=float(chip.max()),
        leakage_power=leakage_power,
        tec_power=tec_power,
        tec_heat_absorbed=q_abs,
        tec_heat_released=q_rel,
        omega=omega,
        current=current,
        stats=stats,
    )
