"""Build the Figure 2 package assembly as a thermal network.

Every layer is discretized into the chip-footprint grid (Figure 3's
six-resistor elements: four lateral neighbors plus up/down interfaces).
Layers wider than the chip (heat spreader, TIM2, heat sink) additionally
get four peripheral ring nodes, HotSpot-style, so heat can spread beyond
the die shadow.  The TEC layer expands into the three sub-layers of
Figure 4 — absorption, generation, rejection — on covered cells, and a
paste-filled conduction node on uncovered cells (the I/D cache region).

The fan enters through the sink-to-ambient coupling: the total
``g_HS&fan(omega)`` of Equation (9) is distributed over the heat-sink
nodes by exposed area and applied per evaluation as a diagonal/RHS
overlay, because it depends on the optimization variable ``omega``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..constants import (
    LEAKAGE_LOOP_MAX_ITER,
    LEAKAGE_LOOP_TOLERANCE,
    RUNAWAY_TEMPERATURE_CEILING,
    T_AMBIENT,
)
from ..errors import ConfigurationError
from ..fan import HeatSinkFanConductance
from ..geometry import Grid
from ..materials import Layer, LayerRole, PackageStack, THERMAL_PASTE
from ..materials.properties import Material
from ..tec import TECArray
from .network import NodeInfo, NodeKind, ThermalNetwork

_SIDES = ("west", "east", "south", "north")


@dataclass(frozen=True)
class PackageModelConfig:
    """Knobs of the package thermal model.

    Attributes:
        ambient: Ambient temperature, K (paper: 318 K).
        pcb_ambient_conductance: Total secondary-path conductance from the
            bottom layer (PCB) to ambient, W/K.  The paper's primary path
            is the sink; this small constant keeps the network grounded
            even at omega = 0.
        filler_material: Material filling uncovered TEC-layer cells.
        runaway_ceiling: Chip temperature (K) above which a solve is
            declared thermal runaway.
        temperature_floor: Sanity floor (K); solutions below it indicate a
            non-physical operating point (over-driven refrigeration).
        leak_tolerance: Convergence threshold of the leakage
            relinearization loop, K.
        leak_max_iterations: Iteration cap of that loop.
    """

    ambient: float = T_AMBIENT
    pcb_ambient_conductance: float = 0.1
    filler_material: Material = THERMAL_PASTE
    runaway_ceiling: float = RUNAWAY_TEMPERATURE_CEILING
    temperature_floor: float = 150.0
    leak_tolerance: float = LEAKAGE_LOOP_TOLERANCE
    leak_max_iterations: int = LEAKAGE_LOOP_MAX_ITER

    def __post_init__(self) -> None:
        if self.ambient <= 0.0:
            raise ConfigurationError("ambient must be in kelvin (> 0)")
        if self.pcb_ambient_conductance < 0.0:
            raise ConfigurationError(
                "pcb_ambient_conductance must be >= 0")
        if not (0.0 < self.temperature_floor < self.runaway_ceiling):
            raise ConfigurationError(
                "Require 0 < temperature_floor < runaway_ceiling")


def _half_vertical(layer: Layer, area: float) -> float:
    """Conductance of half a layer's thickness over ``area`` (W/K)."""
    return 2.0 * layer.material.conductivity * area / layer.thickness


def _series(g1: float, g2: float) -> float:
    """Series combination of two conductances."""
    return 1.0 / (1.0 / g1 + 1.0 / g2)


def _lateral_half(conductivity: float, thickness: float, cross: float,
                  span: float) -> float:
    """Half-cell lateral conductance: k * (t * cross) / (span / 2)."""
    return 2.0 * conductivity * thickness * cross / span


class PackageThermalModel:
    """Assembled thermal network plus the index maps the solver needs.

    Construction is the expensive step (Python-loop assembly of every
    conductance); per-evaluation work is vectorized overlay construction
    plus one sparse solve.  Use :func:`build_package_model` for the
    common construction path.
    """

    def __init__(self, stack: PackageStack, grid: Grid,
                 sink_conductance: HeatSinkFanConductance,
                 tec_array: Optional[TECArray] = None,
                 config: Optional[PackageModelConfig] = None):
        if stack.has_tec and tec_array is None:
            raise ConfigurationError(
                "Stack has a TEC layer: a TECArray is required")
        if not stack.has_tec and tec_array is not None:
            raise ConfigurationError(
                "Stack has no TEC layer: remove the TECArray")
        if tec_array is not None and tec_array.grid is not grid:
            if (tec_array.grid.nx != grid.nx
                    or tec_array.grid.ny != grid.ny
                    or abs(tec_array.grid.width - grid.width) > 1e-12
                    or abs(tec_array.grid.height - grid.height) > 1e-12):
                raise ConfigurationError(
                    "TECArray grid does not match the model grid")
        self.stack = stack
        self.grid = grid
        self.sink_conductance = sink_conductance
        self.tec_array = tec_array
        self.config = config or PackageModelConfig()

        chip = stack.chip_layer
        if (abs(chip.width - grid.width) > 1e-9
                or abs(chip.height - grid.height) > 1e-9):
            raise ConfigurationError(
                "Grid footprint must match the chip layer: "
                f"{grid.width}x{grid.height} vs {chip.width}x{chip.height}")

        self.network = ThermalNetwork()
        # Per-layer cell-node index arrays; TEC layer holds three blocks.
        self._layer_cells: Dict[str, np.ndarray] = {}
        self._periphery: Dict[str, Dict[str, int]] = {}
        self.chip_nodes: np.ndarray = np.empty(0, dtype=int)
        self.tec_abs_nodes: np.ndarray = np.empty(0, dtype=int)
        self.tec_gen_nodes: np.ndarray = np.empty(0, dtype=int)
        self.tec_rej_nodes: np.ndarray = np.empty(0, dtype=int)
        # Dynamic ambient coupling (sink side).
        self._sink_amb_nodes: np.ndarray = np.empty(0, dtype=int)
        self._sink_amb_weights: np.ndarray = np.empty(0, dtype=float)
        # Static ambient coupling (PCB side): per-node conductance vector.
        self._static_amb_g: np.ndarray = np.empty(0, dtype=float)

        self._build()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        self._create_nodes()
        self._connect_lateral()
        self._connect_vertical()
        self._connect_periphery()
        self._attach_static_ambient()
        self.network.finalize()
        self._static_amb_g = self._static_amb_builder
        self._finalize_index_arrays()

    def _create_nodes(self) -> None:
        grid = self.grid
        cell_area = grid.cell_area
        for layer in self.stack:
            if layer.role is LayerRole.TEC:
                self._create_tec_nodes(layer)
                continue
            rho_c = layer.material.volumetric_heat_capacity
            capacity = rho_c * cell_area * layer.thickness
            kind = NodeKind.CHIP if layer.role is LayerRole.CHIP \
                else NodeKind.BULK
            nodes = np.empty(grid.cell_count, dtype=int)
            for cell in range(grid.cell_count):
                nodes[cell] = self.network.add_node(NodeInfo(
                    name=f"{layer.name}:{cell}",
                    kind=kind, layer=layer.name, cell=cell,
                    heat_capacity=capacity))
            self._layer_cells[layer.name] = nodes
            if layer.role is LayerRole.CHIP:
                self.chip_nodes = nodes
            self._maybe_create_periphery(layer)

    def _create_tec_nodes(self, layer: Layer) -> None:
        grid = self.grid
        if self.tec_array is None:
            raise ConfigurationError(
                "stack has a TEC layer but no TEC array is configured")
        mask = self.tec_array.coverage_mask
        film_capacity = (layer.material.volumetric_heat_capacity
                         * grid.cell_area * layer.thickness)
        filler_capacity = (self.config.filler_material
                           .volumetric_heat_capacity
                           * grid.cell_area * layer.thickness)
        abs_nodes = np.full(grid.cell_count, -1, dtype=int)
        gen_nodes = np.full(grid.cell_count, -1, dtype=int)
        rej_nodes = np.full(grid.cell_count, -1, dtype=int)
        filler = np.full(grid.cell_count, -1, dtype=int)
        for cell in range(grid.cell_count):
            if mask[cell]:
                abs_nodes[cell] = self.network.add_node(NodeInfo(
                    f"{layer.name}:abs:{cell}", NodeKind.TEC_ABS,
                    layer.name, cell, film_capacity / 3.0))
                gen_nodes[cell] = self.network.add_node(NodeInfo(
                    f"{layer.name}:gen:{cell}", NodeKind.TEC_GEN,
                    layer.name, cell, film_capacity / 3.0))
                rej_nodes[cell] = self.network.add_node(NodeInfo(
                    f"{layer.name}:rej:{cell}", NodeKind.TEC_REJ,
                    layer.name, cell, film_capacity / 3.0))
            else:
                filler[cell] = self.network.add_node(NodeInfo(
                    f"{layer.name}:fill:{cell}", NodeKind.FILLER,
                    layer.name, cell, filler_capacity))
        self.tec_abs_nodes = abs_nodes
        self.tec_gen_nodes = gen_nodes
        self.tec_rej_nodes = rej_nodes
        self._tec_filler_nodes = filler
        # The "cell node" used for lateral wiring inside the TEC layer is
        # the generation (middle) node on covered cells, filler otherwise.
        self._layer_cells[layer.name] = np.where(mask, gen_nodes, filler)

    def _maybe_create_periphery(self, layer: Layer) -> None:
        chip = self.stack.chip_layer
        if layer.width <= chip.width + 1e-12:
            return
        overhang_area = (layer.footprint_area
                         - chip.width * chip.height) / len(_SIDES)
        capacity = (layer.material.volumetric_heat_capacity
                    * overhang_area * layer.thickness)
        nodes: Dict[str, int] = {}
        for side in _SIDES:
            nodes[side] = self.network.add_node(NodeInfo(
                f"{layer.name}:periph:{side}", NodeKind.PERIPHERY,
                layer.name, -1, capacity))
        self._periphery[layer.name] = nodes

    def _connect_lateral(self) -> None:
        """Four-neighbor lateral conduction inside every gridded layer."""
        grid = self.grid
        for layer in self.stack:
            cells = self._layer_cells[layer.name]
            k_cell = self._lateral_conductivities(layer)
            for ix, iy in grid.iter_cells():
                here = grid.flat_index(ix, iy)
                if ix + 1 < grid.nx:
                    there = grid.flat_index(ix + 1, iy)
                    g = _series(
                        _lateral_half(k_cell[here], layer.thickness,
                                      grid.dy, grid.dx),
                        _lateral_half(k_cell[there], layer.thickness,
                                      grid.dy, grid.dx))
                    self.network.add_conductance(
                        int(cells[here]), int(cells[there]), g)
                if iy + 1 < grid.ny:
                    there = grid.flat_index(ix, iy + 1)
                    g = _series(
                        _lateral_half(k_cell[here], layer.thickness,
                                      grid.dx, grid.dy),
                        _lateral_half(k_cell[there], layer.thickness,
                                      grid.dx, grid.dy))
                    self.network.add_conductance(
                        int(cells[here]), int(cells[there]), g)

    def _lateral_conductivities(self, layer: Layer) -> np.ndarray:
        """Per-cell lateral conductivity (TEC layer mixes film/filler)."""
        if layer.role is LayerRole.TEC:
            if self.tec_array is None:
                raise ConfigurationError(
                    "stack has a TEC layer but no TEC array is "
                    "configured")
            film = layer.material.conductivity
            paste = self.config.filler_material.conductivity
            return np.where(self.tec_array.coverage_mask, film, paste)
        return np.full(self.grid.cell_count, layer.material.conductivity)

    def _connect_vertical(self) -> None:
        """Stack consecutive layers cell by cell."""
        layers = self.stack.layers
        area = self.grid.cell_area
        for below, above in zip(layers, layers[1:]):
            if above.role is LayerRole.TEC:
                self._connect_tec_vertical(below, above, side="below")
            elif below.role is LayerRole.TEC:
                self._connect_tec_vertical(above, below, side="above")
            else:
                lower = self._layer_cells[below.name]
                upper = self._layer_cells[above.name]
                g = _series(_half_vertical(below, area),
                            _half_vertical(above, area))
                for cell in range(self.grid.cell_count):
                    self.network.add_conductance(
                        int(lower[cell]), int(upper[cell]), g)

    def _connect_tec_vertical(self, neighbor: Layer, tec: Layer,
                              side: str) -> None:
        """Wire the TEC sandwich to the layer below or above it.

        Covered cells: the neighbor couples to the TEC face node (abs below,
        rej above) through the neighbor's half thickness; the internal
        K_TEC/2 stages (conductance 2*K each) connect abs-gen-rej.
        Uncovered cells: plain series conduction through the filler.
        """
        if self.tec_array is None:
            raise ConfigurationError(
                "stack has a TEC layer but no TEC array is configured")
        grid = self.grid
        area = grid.cell_area
        mask = self.tec_array.coverage_mask
        cell_k = self.tec_array.cell_conductance
        neighbor_cells = self._layer_cells[neighbor.name]
        filler_layer = Layer("filler", LayerRole.CONDUCT,
                             self.config.filler_material,
                             tec.thickness, tec.width, tec.height)
        g_half_neighbor = _half_vertical(neighbor, area)
        g_filler = _series(g_half_neighbor,
                           _half_vertical(filler_layer, area))
        internal_done = side == "above"  # wire internals only once
        for cell in range(grid.cell_count):
            if mask[cell]:
                face = self.tec_abs_nodes[cell] if side == "below" \
                    else self.tec_rej_nodes[cell]
                self.network.add_conductance(
                    int(neighbor_cells[cell]), int(face), g_half_neighbor)
                if not internal_done:
                    two_k = 2.0 * cell_k[cell]
                    self.network.add_conductance(
                        int(self.tec_abs_nodes[cell]),
                        int(self.tec_gen_nodes[cell]), two_k)
                    self.network.add_conductance(
                        int(self.tec_gen_nodes[cell]),
                        int(self.tec_rej_nodes[cell]), two_k)
            else:
                self.network.add_conductance(
                    int(neighbor_cells[cell]),
                    int(self._tec_filler_nodes[cell]), g_filler)

    def _connect_periphery(self) -> None:
        """Ring nodes: edge-cell coupling, ring-ring, and vertical paths."""
        chip = self.stack.chip_layer
        grid = self.grid
        layers = self.stack.layers
        for layer in layers:
            if layer.name not in self._periphery:
                continue
            rings = self._periphery[layer.name]
            cells = self._layer_cells[layer.name]
            overhang = (layer.width - chip.width) / 2.0
            k = layer.material.conductivity
            for side in _SIDES:
                ring = rings[side]
                edge = grid.edge_cells(side)
                cross = grid.dy if side in ("west", "east") else grid.dx
                span = grid.dx if side in ("west", "east") else grid.dy
                # Edge-cell center to ring centroid.
                g_cell = k * layer.thickness * cross \
                    / (span / 2.0 + overhang / 2.0)
                for ix, iy in edge:
                    cell = grid.flat_index(ix, iy)
                    self.network.add_conductance(int(cells[cell]), ring,
                                                 g_cell)
            # Ring-to-ring coupling around the corners (aspect ~ 1).
            ring_pairs = [("west", "north"), ("north", "east"),
                          ("east", "south"), ("south", "west")]
            for a, b in ring_pairs:
                self.network.add_conductance(
                    rings[a], rings[b], k * layer.thickness)
        # Vertical ring-to-ring between consecutive layers that both have
        # periphery (e.g. spreader <-> TIM2 <-> sink).
        for below, above in zip(layers, layers[1:]):
            if (below.name in self._periphery
                    and above.name in self._periphery):
                area_below = (below.footprint_area
                              - chip.width * chip.height) / len(_SIDES)
                area_above = (above.footprint_area
                              - chip.width * chip.height) / len(_SIDES)
                area = min(area_below, area_above)
                g = _series(_half_vertical(below, area),
                            _half_vertical(above, area))
                for side in _SIDES:
                    self.network.add_conductance(
                        self._periphery[below.name][side],
                        self._periphery[above.name][side], g)

    def _attach_static_ambient(self) -> None:
        """Secondary (board) path: bottom layer to ambient, fan-independent."""
        builder = np.zeros(self.network.node_count, dtype=float)
        total = self.config.pcb_ambient_conductance
        bottom = self.stack.layers[0]
        if total > 0.0 and bottom.role is not LayerRole.CHIP:
            cells = self._layer_cells[bottom.name]
            per_cell = total / self.grid.cell_count
            for cell in range(self.grid.cell_count):
                self.network.add_grounded_conductance(
                    int(cells[cell]), per_cell)
                builder[int(cells[cell])] = per_cell
        self._static_amb_builder = builder

    def _finalize_index_arrays(self) -> None:
        """Precompute sink ambient weights and covered-cell helper arrays."""
        sink = self.stack.heatsink_layer
        chip = self.stack.chip_layer
        nodes: List[int] = []
        weights: List[float] = []
        cell_area = self.grid.cell_area
        sink_cells = self._layer_cells[sink.name]
        for cell in range(self.grid.cell_count):
            nodes.append(int(sink_cells[cell]))
            weights.append(cell_area)
        if sink.name in self._periphery:
            ring_area = (sink.footprint_area
                         - chip.width * chip.height) / len(_SIDES)
            for side in _SIDES:
                nodes.append(self._periphery[sink.name][side])
                weights.append(ring_area)
        weight_arr = np.array(weights, dtype=float)
        self._sink_amb_nodes = np.array(nodes, dtype=int)
        self._sink_amb_weights = weight_arr / weight_arr.sum()
        if self.tec_array is not None:
            self._covered_cells = np.flatnonzero(
                self.tec_array.coverage_mask)
        else:
            self._covered_cells = np.empty(0, dtype=int)
        # Structure-side precomputation for overlays(): the sink node
        # indices are unique, so fancy-index adds replace np.add.at;
        # the static ambient RHS never changes; the covered-cell TEC
        # node/coefficient gathers are hoisted out of the per-solve path.
        n = self.network.node_count
        # Overlay buffers are *thread-local*: the threaded executor runs
        # several solves against one shared model concurrently, and a
        # single scratch pair would let one thread clobber another's
        # overlay between assembly and solve.
        self._overlay_buffers = threading.local()
        self._static_amb_rhs = self._static_amb_g * self.config.ambient
        cov = self._covered_cells
        if self.tec_array is not None and cov.size:
            self._cov_abs_nodes = self.tec_abs_nodes[cov]
            self._cov_rej_nodes = self.tec_rej_nodes[cov]
            self._cov_gen_nodes = self.tec_gen_nodes[cov]
            self._cov_seebeck = self.tec_array.cell_seebeck[cov]
            self._cov_resistance = self.tec_array.cell_resistance[cov]
        else:
            empty_i = np.empty(0, dtype=int)
            empty_f = np.empty(0, dtype=float)
            self._cov_abs_nodes = empty_i
            self._cov_rej_nodes = empty_i
            self._cov_gen_nodes = empty_i
            self._cov_seebeck = empty_f
            self._cov_resistance = empty_f

    # -- pickling -----------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the (unpicklable) thread-local overlay scratch."""
        state = self.__dict__.copy()
        state.pop("_overlay_buffers", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._overlay_buffers = threading.local()

    # -- per-evaluation overlays --------------------------------------

    def overlays(
        self,
        omega: float,
        current: Union[float, np.ndarray],
        dynamic_cell_power: np.ndarray,
        leak_slope: np.ndarray,
        leak_const: np.ndarray,
        sink_heat: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Build the diagonal and RHS overlays for one linear solve.

        Args:
            omega: Fan speed, rad/s.
            current: TEC driving current, A — a scalar for the paper's
                single series string, or a per-cell array for
                independently-driven channels (must be 0 / absent for
                no-TEC stacks).
            dynamic_cell_power: Per-chip-cell dynamic power, W.
            leak_slope: Per-chip-cell linearized leakage slope ``a`` (W/K).
            leak_const: Per-chip-cell constant term ``b - a*t_ref`` (W).
            sink_heat: Extra heat (W) deposited on the heat-sink surface —
                the recirculated share of fan motor/air-friction power.
                This is why over-speeding the fan eventually *heats* the
                system (the paper's Figure 6 discussion).

        The Peltier terms fold into the diagonal: ``-alpha*I*T`` on the
        absorption node adds ``+alpha*I`` to its diagonal, ``+alpha*I*T``
        on the rejection node subtracts it.  Leakage slope ``a`` subtracts
        from chip diagonals.  All temperature-independent injections land
        on the RHS.

        Returns views of preallocated per-model, *per-thread* buffers:
        the arrays are overwritten by the next :meth:`overlays` call on
        this model from the same thread, so callers that retain them
        past the following solve must copy.  Distinct threads get
        distinct buffers, which is what lets the threaded executor run
        concurrent solves against one shared model.
        """
        ncell = self.grid.cell_count
        dyn = np.asarray(dynamic_cell_power, dtype=float)
        slope = np.asarray(leak_slope, dtype=float)
        const = np.asarray(leak_const, dtype=float)
        for name, arr in (("dynamic_cell_power", dyn),
                          ("leak_slope", slope), ("leak_const", const)):
            if arr.shape != (ncell,):
                raise ConfigurationError(
                    f"{name} must have shape ({ncell},), got {arr.shape}")
        if self.tec_array is None:
            current_arr = np.asarray(current, dtype=float)
            if (current_arr < 0.0).any():
                raise ConfigurationError(
                    f"TEC current must be >= 0, got {current}")
            if (current_arr > 0.0).any():
                raise ConfigurationError(
                    "Nonzero TEC current on a stack without TECs")
            cell_current = None
        else:
            cell_current = self.tec_array.cell_current(current)

        buffers = self._overlay_buffers
        try:
            diag = buffers.diag
            rhs = buffers.rhs
        except AttributeError:
            n = self.network.node_count
            diag = buffers.diag = np.zeros(n, dtype=float)
            rhs = buffers.rhs = np.zeros(n, dtype=float)
        diag.fill(0.0)
        rhs.fill(0.0)
        ambient = self.config.ambient

        # omega-dependent sink-to-ambient coupling (the sink node index
        # array is duplicate-free, so += is the scatter-add).
        g_total = self.sink_conductance.conductance(omega)
        g_nodes = g_total * self._sink_amb_weights
        diag[self._sink_amb_nodes] += g_nodes
        rhs[self._sink_amb_nodes] += g_nodes * ambient
        if sink_heat < 0.0:
            raise ConfigurationError(
                f"sink_heat must be >= 0, got {sink_heat}")
        if sink_heat > 0.0:
            rhs[self._sink_amb_nodes] += sink_heat * self._sink_amb_weights

        # Static (board) ambient path: diagonal already in the base matrix.
        rhs += self._static_amb_rhs

        # Chip power: dynamic + linearized leakage.
        rhs[self.chip_nodes] += dyn + const
        diag[self.chip_nodes] -= slope

        # I-dependent TEC terms through the cached covered-node gathers.
        if cell_current is not None and self._cov_abs_nodes.size:
            cov_current = cell_current[self._covered_cells]
            peltier = self._cov_seebeck * cov_current
            diag[self._cov_abs_nodes] += peltier
            diag[self._cov_rej_nodes] -= peltier
            rhs[self._cov_gen_nodes] += \
                self._cov_resistance * cov_current ** 2
        return diag, rhs

    # -- structure derivatives (adjoint forcing vectors) ---------------

    def _scalar_current(self, current: Union[float, np.ndarray]) -> float:
        """The series driving current as a scalar (gradient paths only).

        The optimizer differentiates with respect to the paper's single
        series current; per-cell current arrays have no scalar
        derivative direction and are rejected.
        """
        arr = np.asarray(current, dtype=float)
        if arr.ndim != 0:
            raise ConfigurationError(
                "gradient paths need a scalar series TEC current, got "
                f"shape {arr.shape}")
        return float(arr)

    def overlay_omega_gradient(self, omega: float, temps: np.ndarray,
                               sink_heat_gradient: float = 0.0,
                               ) -> np.ndarray:
        """Adjoint forcing vector ``d(rhs - diag*T)/d(omega)``.

        Only the sink-to-ambient coupling depends on the fan speed
        ``omega`` (rad/s): the Equation (9) fit contributes
        ``g'(omega)`` (zero on the natural-convection floor below the
        crossover speed, ``p/omega`` above it) to both the diagonal and
        the ambient injection, and the recirculated fan heat
        contributes ``sink_heat_gradient`` (the caller's
        ``d(sink_heat)/d(omega)``, W/(rad/s)) to the RHS.  ``temps`` is
        the converged node-temperature vector, K.
        """
        forcing = np.zeros(self.network.node_count)
        g_prime = self.sink_conductance.conductance_gradient(omega)
        sink_temps = temps[self._sink_amb_nodes]
        forcing[self._sink_amb_nodes] = self._sink_amb_weights * (
            g_prime * (self.config.ambient - sink_temps)
            + sink_heat_gradient)
        return forcing

    def overlay_current_gradient(self, current: Union[float, np.ndarray],
                                 temps: np.ndarray) -> np.ndarray:
        """Adjoint forcing vector ``d(rhs - diag*T)/d(I_TEC)``.

        ``current`` is the series driving current, A; ``temps`` the
        converged node temperatures, K.  Per covered cell: the Peltier
        diagonal terms contribute ``-alpha*T`` on the absorption node
        and ``+alpha*T`` on the rejection node, and the Joule RHS term
        ``R*I**2`` contributes ``2*R*I`` on the generation node.
        """
        forcing = np.zeros(self.network.node_count)
        if self.tec_array is None or not self._cov_abs_nodes.size:
            return forcing
        i_tec = self._scalar_current(current)
        alpha = self._cov_seebeck
        forcing[self._cov_abs_nodes] -= \
            alpha * temps[self._cov_abs_nodes]
        forcing[self._cov_rej_nodes] += \
            alpha * temps[self._cov_rej_nodes]
        forcing[self._cov_gen_nodes] += \
            2.0 * self._cov_resistance * i_tec
        return forcing

    def power_temperature_gradient(self,
                                   current: Union[float, np.ndarray],
                                   leak_slope: np.ndarray) -> np.ndarray:
        """``d(P_leak + P_TEC)/dT`` over the full node vector, W/K.

        ``current`` is the series driving current, A.  Leakage
        contributes its linearized slope ``a`` (``leak_slope``, W/K per
        cell) on the chip nodes (exact when ``a`` is the tangent at the
        converged temperatures); TEC pumping power
        ``alpha*(T_hot - T_cold)*I`` contributes ``+alpha*I`` on each
        covered rejection node and ``-alpha*I`` on each covered
        absorption node.
        """
        gradient = np.zeros(self.network.node_count)
        gradient[self.chip_nodes] = np.asarray(leak_slope, dtype=float)
        if self.tec_array is not None and self._cov_abs_nodes.size:
            i_tec = self._scalar_current(current)
            peltier = self._cov_seebeck * i_tec
            gradient[self._cov_rej_nodes] += peltier
            gradient[self._cov_abs_nodes] -= peltier
        return gradient

    def tec_power_current_gradient(self,
                                   current: Union[float, np.ndarray],
                                   temps: np.ndarray) -> float:
        """Explicit ``dP_TEC/dI`` (W/A) at fixed temperatures.

        ``current`` is the series driving current, A; ``temps`` the
        converged node temperatures, K.
        ``P_TEC = sum(R*I**2 + alpha*(T_hot - T_cold)*I)`` over covered
        cells, so the partial is ``sum(2*R*I + alpha*(T_hot - T_cold))``.
        """
        if self.tec_array is None or not self._cov_abs_nodes.size:
            return 0.0
        i_tec = self._scalar_current(current)
        delta = (temps[self._cov_rej_nodes]
                 - temps[self._cov_abs_nodes])
        return float(np.sum(2.0 * self._cov_resistance * i_tec
                            + self._cov_seebeck * delta))

    # -- convenient extracts ------------------------------------------

    def chip_temperatures(self, temps: np.ndarray) -> np.ndarray:
        """Per-chip-cell temperatures from a full solution vector."""
        return temps[self.chip_nodes]

    def tec_face_temperatures(self, temps: np.ndarray,
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-cell (cold, hot) TEC face temperatures.

        Uncovered cells carry the ambient placeholder so the arrays align
        with the grid; they contribute nothing to TEC power (their
        coefficients are zero in :class:`TECArray`).
        """
        ncell = self.grid.cell_count
        cold = np.full(ncell, self.config.ambient, dtype=float)
        hot = np.full(ncell, self.config.ambient, dtype=float)
        if self.tec_array is not None and self._covered_cells.size:
            cov = self._covered_cells
            cold[cov] = temps[self.tec_abs_nodes[cov]]
            hot[cov] = temps[self.tec_rej_nodes[cov]]
        return cold, hot

    def layer_temperatures(self, temps: np.ndarray, layer: str) -> np.ndarray:
        """Per-cell temperatures of a named layer."""
        if layer not in self._layer_cells:
            raise ConfigurationError(f"No layer named {layer!r}")
        return temps[self._layer_cells[layer]]


def build_package_model(
    stack: PackageStack,
    grid: Grid,
    sink_conductance: Optional[HeatSinkFanConductance] = None,
    tec_array: Optional[TECArray] = None,
    config: Optional[PackageModelConfig] = None,
) -> PackageThermalModel:
    """Convenience constructor with the paper's default Equation (9)
    heat-sink/fan conductance fit (``sink_conductance`` maps fan speed
    in rad/s to a conductance in W/K)."""
    return PackageThermalModel(
        stack=stack,
        grid=grid,
        sink_conductance=sink_conductance or HeatSinkFanConductance(),
        tec_array=tec_array,
        config=config,
    )
