"""Build-once/update-many sparse thermal operator.

Every steady-state query solves ``(G_static + diag(overlay)) T = rhs``
(the KCL dual of Constraint 14).  The *structure* of that system — the
node graph, the sparsity pattern, the CSC storage layout — is fixed the
moment the network finalizes; only the per-operating-point *state* (the
diagonal overlay and the right-hand side) changes between solves.  This
module separates the two:

* :class:`ThermalOperator` owns the structure: one CSC matrix with every
  diagonal entry stored explicitly, the baseline ``data`` array of the
  static conductances, and a precomputed index map from node ``i`` to
  the position of entry ``(i, i)`` inside ``csc.data``.  Applying an
  overlay is then two vectorized array writes — no COO/CSR/CSC
  round-trips, no matrix additions, no fresh allocations.
* :class:`Factorization` wraps one ``splu`` factor of the operator at a
  specific overlay.  Factors are cached in an LRU keyed by a digest of
  the overlay, so repeated solves at the same operating point (leakage
  iterations at a converged linearization point, re-evaluations after a
  cache clear, campaign stages revisiting the canonical initial point,
  transient steps under constant schedules) back-substitute instead of
  refactorizing.

Keying and bit-identity: with the default ``overlay_quantum = 0.0`` the
digest hashes the overlay's exact float64 bytes, so a cache hit implies
the matrix is bit-for-bit the one the factor was computed from and the
operator path is bit-identical to a fresh factorization.  A positive
quantum rounds the overlay to multiples of ``quantum`` before hashing,
trading exactness (solutions may differ by
``O(cond(G) * quantum / ||G||)``) for extra reuse across near-identical
operating points; callers opting in must tolerate that perturbation.

SuperLU note: ``scipy.sparse.linalg.spsolve`` and ``splu(...).solve``
run the same SuperLU driver and produce bit-identical solutions for
these systems (verified in ``tests/test_operator.py``), so routing the
legacy :meth:`repro.thermal.ThermalNetwork.solve` through this layer
changes no fault-free result.
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csc_matrix, csr_matrix
from scipy.sparse.linalg import LinearOperator, onenormest, splu

from ..errors import ConfigurationError, SingularNetworkError
from ..obs import runtime as _obs
from ..obs.clock import monotonic

#: Dimensionless solution-amplification limit above which a finite
#: sparse solve is declared numerically degenerate (see
#: :meth:`ThermalOperator.solve`).  Physical packages stay below ~1e6.
_DEGENERACY_GROWTH_LIMIT = 1.0e13

#: Default number of cached factorizations.  Each entry holds one
#: SuperLU factor (roughly the fill-in of the matrix, a few hundred kB
#: at production grid resolutions), so the default working set stays in
#: the tens of MB.
DEFAULT_FACTOR_CAPACITY = 64


@dataclass(frozen=True)
class OperatorStats:
    """Counters of one :class:`ThermalOperator`'s lifetime.

    Attributes:
        solves: Right-hand sides solved (a batched solve of ``k``
            columns counts ``k``).
        factorizations: Sparse LU factorizations performed.
        cache_hits: Solves served from a cached factorization.
        cache_evictions: Factorizations dropped by the LRU cap.
        adjoint_solves: Transposed-system right-hand sides solved by
            the gradient path (counted separately from ``solves`` so
            forward-solve comparisons stay meaningful).
    """

    solves: int
    factorizations: int
    cache_hits: int
    cache_evictions: int
    adjoint_solves: int = 0

    @property
    def reuse_ratio(self) -> float:
        """Fraction of factor requests served from the cache."""
        total = self.factorizations + self.cache_hits
        return self.cache_hits / total if total else 0.0


class Factorization:
    """One ``splu`` factor of ``static + diag(overlay)``.

    Holds everything a back-substitution needs so cached reuse never
    touches the operator's mutable CSC scratch matrix: the SuperLU
    object, the matrix 1-norm (for the degeneracy guard), and the
    digest it is filed under.
    """

    __slots__ = ("_lu", "digest", "norm1", "solve_count")

    def __init__(self, lu, digest: bytes, norm1: float):
        self._lu = lu
        self.digest = digest
        self.norm1 = norm1
        self.solve_count = 0

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute one RHS vector or an ``(n, k)`` RHS block."""
        self.solve_count += 1
        with np.errstate(all="ignore"):
            return self._lu.solve(rhs)

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute the *transposed* system ``A^T x = rhs``.

        The adjoint entry point: SuperLU stores one factorization of
        ``A`` and serves both ``A x = b`` and ``A^T x = b`` from it, so
        a gradient costs a back-substitution — never a second
        factorization.  Accepts one RHS vector or an ``(n, k)`` block.
        """
        self.solve_count += 1
        with np.errstate(all="ignore"):
            return self._lu.solve(rhs, trans="T")


class _OperatorInstruments:
    """Telemetry handles resolved once per installed registry.

    ``metrics.counter(name)`` is a dict lookup plus a string hash per
    call; on the warm-solve path (a few hundred microseconds of
    back-substitution) that resolution cost plus two clock reads was
    the bulk of the enabled-session overhead measured by
    ``benchmarks/bench_obs_overhead.py``.  One of these is built the
    first time an operator observes a given registry and reused until
    a different registry is installed (sessions install fresh
    registries, so identity comparison is the correct invalidation).
    """

    __slots__ = ("metrics", "solves", "solve_seconds", "factor_hits",
                 "factorizations", "factorize_seconds",
                 "factor_evictions", "_tick")

    #: Only every Nth warm solve is timed: the latency histogram needs
    #: a sample, not a census, and the two ``monotonic()`` reads are
    #: the single largest per-solve cost of an enabled session.
    SAMPLE_EVERY = 16

    def __init__(self, metrics) -> None:
        self.metrics = metrics
        self.solves = metrics.counter("operator.solves")
        self.solve_seconds = metrics.histogram(
            "operator.solve_seconds")
        self.factor_hits = metrics.counter("operator.factor.hits")
        self.factorizations = metrics.counter(
            "operator.factorizations")
        self.factorize_seconds = metrics.histogram(
            "operator.factorize_seconds")
        self.factor_evictions = metrics.counter(
            "operator.factor.evictions")
        self._tick = 0

    def sample_solve(self) -> bool:
        """True on the solves whose latency should be observed.

        The first solve under a fresh registry always samples, so even
        a one-solve session snapshots a latency histogram; after that,
        one solve in :data:`SAMPLE_EVERY`.
        """
        tick = self._tick
        self._tick = tick + 1
        return tick % self.SAMPLE_EVERY == 0


class ThermalOperator:
    """Structure/state split over one finalized static matrix.

    The operator is immutable in structure (built once from the static
    CSR matrix) and cheap in state: :meth:`solve` writes the diagonal
    overlay into a preallocated CSC ``data`` array through the
    precomputed diagonal index map, factorizes (or reuses a cached
    factor), back-substitutes, and applies the same singularity and
    degeneracy guards as the legacy solve path.
    """

    def __init__(self, static: csr_matrix,
                 factor_capacity: int = DEFAULT_FACTOR_CAPACITY,
                 overlay_quantum: float = 0.0):
        """Build the operator structure from a static CSR matrix.

        Args:
            static: Finalized static conductance matrix, W/K entries.
            factor_capacity: LRU cap on cached factorizations (>= 1).
            overlay_quantum: Digest quantization step, W/K; 0 keys on
                the exact overlay bytes (bit-identical reuse only).
        """
        if factor_capacity < 1:
            raise ConfigurationError(
                f"factor_capacity must be >= 1, got {factor_capacity}")
        if overlay_quantum < 0.0:
            raise ConfigurationError(
                f"overlay_quantum must be >= 0, got {overlay_quantum}")
        n = static.shape[0]
        if static.shape != (n, n):
            raise ConfigurationError(
                f"static matrix must be square, got {static.shape}")
        self._n = n
        self._quantum = float(overlay_quantum)
        self._capacity = int(factor_capacity)
        # CSC with every diagonal entry stored explicitly (appending
        # zero-valued (i, i) entries before conversion; sum_duplicates
        # keeps explicit zeros), so the overlay always has a slot to
        # land in even on nodes without a static diagonal term.
        coo = static.tocoo()
        rows = np.concatenate([coo.row, np.arange(n)])
        cols = np.concatenate([coo.col, np.arange(n)])
        vals = np.concatenate([coo.data, np.zeros(n)])
        csc = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
        csc.sum_duplicates()
        self._csc: csc_matrix = csc
        self._base_data: np.ndarray = csc.data.copy()
        self._diag_index = self._build_diag_index(csc)
        self._lru: "OrderedDict[bytes, Factorization]" = OrderedDict()
        self._solves = 0
        self._factorizations = 0
        self._hits = 0
        self._evictions = 0
        self._adjoint_solves = 0
        self._obs_handles: Optional[_OperatorInstruments] = None
        # Guards the LRU, the CSC data scratch, and the counters under
        # the thread executor; cold factorizations serialize per
        # operator while warm back-substitutions run outside the lock.
        self._lock = threading.RLock()

    def _instruments(self) -> _OperatorInstruments:
        """Handles for the currently installed registry (cached)."""
        handles = self._obs_handles
        metrics = _obs.STATE.metrics
        if handles is None or handles.metrics is not metrics:
            handles = _OperatorInstruments(metrics)
            self._obs_handles = handles
            # Once per registry: snapshot-time gauges mirroring
            # :attr:`stats` (held weakly — see ``add_collector``).
            metrics.add_collector(self._stats_gauges)
        return handles

    def _stats_gauges(self) -> dict:
        """Gauge contributions mirroring the lifetime :attr:`stats`.

        Distinct ``operator.stats.*`` names: the per-event
        ``operator.*`` counters above are registered as counters, and
        a name is bound to one instrument type per registry.
        """
        return {
            "operator.stats.solves": float(self._solves),
            "operator.stats.factorizations":
                float(self._factorizations),
            "operator.stats.factor_hits": float(self._hits),
            "operator.stats.factor_evictions": float(self._evictions),
            "operator.stats.adjoint_solves":
                float(self._adjoint_solves),
            "operator.stats.factor_cache_size": float(len(self._lru)),
        }

    @staticmethod
    def _build_diag_index(csc: csc_matrix) -> np.ndarray:
        """Position of entry ``(j, j)`` inside ``csc.data`` per node."""
        n = csc.shape[0]
        index = np.empty(n, dtype=np.int64)
        indptr, indices = csc.indptr, csc.indices
        for j in range(n):
            start, stop = indptr[j], indptr[j + 1]
            pos = start + int(np.searchsorted(indices[start:stop], j))
            if pos >= stop or indices[pos] != j:
                raise ConfigurationError(
                    f"no diagonal storage slot for node {j}")
            index[j] = pos
        return index

    # -- introspection ------------------------------------------------

    @property
    def node_count(self) -> int:
        """Dimension of the operator."""
        return self._n

    @property
    def factor_capacity(self) -> int:
        """LRU cap on cached factorizations."""
        return self._capacity

    @property
    def overlay_quantum(self) -> float:
        """Digest quantization step, W/K (0 = exact-bytes keying)."""
        return self._quantum

    @property
    def cached_factor_count(self) -> int:
        """Factorizations currently held by the LRU."""
        return len(self._lru)

    @property
    def stats(self) -> OperatorStats:
        """Lifetime counters (solves, factorizations, hits, evictions)."""
        return OperatorStats(
            solves=self._solves,
            factorizations=self._factorizations,
            cache_hits=self._hits,
            cache_evictions=self._evictions,
            adjoint_solves=self._adjoint_solves)

    def clear(self) -> None:
        """Drop every cached factorization (counters are kept)."""
        with self._lock:
            self._lru.clear()

    def reset_stats(self) -> None:
        """Zero the lifetime counters (the cache is kept)."""
        with self._lock:
            self._solves = 0
            self._factorizations = 0
            self._hits = 0
            self._evictions = 0
            self._adjoint_solves = 0

    # -- pickling -----------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the structure, not the process-local state.

        SuperLU factor objects hold pointers into native memory and
        cannot cross a process boundary, so the LRU is dropped and the
        lifetime counters are zeroed: an unpickled operator starts cold
        in its new process (the worker rebuilds factors on demand,
        which is exactly the exec layer's cache-locality contract).

        When a shared-memory publication plane is open (the scheduler
        holds one for the duration of a parallel run), the cold
        template arrays — CSC ``data``/``indices``/``indptr`` baseline
        and the diagonal index map — are published once and replaced by
        a small descriptor; workers map the same physical pages instead
        of each receiving a pickled copy.  Publication failure falls
        back to embedding the arrays, with bit-identical values either
        way.
        """
        state = self.__dict__.copy()
        state["_lru"] = OrderedDict()
        state["_solves"] = 0
        state["_factorizations"] = 0
        state["_hits"] = 0
        state["_evictions"] = 0
        state["_adjoint_solves"] = 0
        state["_obs_handles"] = None
        state.pop("_lock", None)
        from ..exec import shm as _shm
        plane = _shm.active_plane()
        if plane is not None:
            descriptor = plane.publish(self, {
                "base": self._base_data,
                "indices": self._csc.indices,
                "indptr": self._csc.indptr,
                "diag": self._diag_index,
            })
            if descriptor is not None:
                state["_shm"] = descriptor
                for key in ("_csc", "_base_data", "_diag_index"):
                    state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore structure, attaching shared-memory templates if used.

        The CSC ``data`` scratch is always a private writable copy of
        the baseline (``_load`` mutates it per overlay); the index
        arrays, the baseline, and the diagonal map stay read-only views
        into the shared segment.
        """
        descriptor = state.pop("_shm", None)
        self.__dict__.update(state)
        self._lock = threading.RLock()
        if descriptor is not None:
            from ..exec import shm as _shm
            arrays = _shm.attach_arrays(descriptor)
            base = arrays["base"]
            csc = csc_matrix(
                (base.copy(), arrays["indices"], arrays["indptr"]),
                shape=(self._n, self._n), copy=False)
            self._csc = csc
            self._base_data = base
            self._diag_index = arrays["diag"]

    # -- state application --------------------------------------------

    def _checked_overlay(self, diag_overlay: np.ndarray) -> np.ndarray:
        overlay = np.asarray(diag_overlay, dtype=float)
        if overlay.shape != (self._n,):
            raise ConfigurationError(
                f"Overlay must have shape ({self._n},), got "
                f"{overlay.shape}")
        return overlay

    def _load(self, overlay: np.ndarray) -> csc_matrix:
        """Write ``static + diag(overlay)`` into the CSC scratch data."""
        np.copyto(self._csc.data, self._base_data)
        self._csc.data[self._diag_index] += overlay
        return self._csc

    def _digest(self, overlay: np.ndarray) -> bytes:
        if self._quantum > 0.0:
            payload = np.round(overlay / self._quantum).tobytes()
        else:
            payload = overlay.tobytes()
        return hashlib.blake2b(payload, digest_size=16).digest()

    def factor(self, diag_overlay: np.ndarray) -> Factorization:
        """Factorization of ``static + diag(overlay)``, cached by LRU.

        Raises :class:`SingularNetworkError` (with a condition-number
        estimate) when the matrix does not factor; failures are never
        cached.
        """
        overlay = self._checked_overlay(diag_overlay)
        key = self._digest(overlay)
        with self._lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._lru.move_to_end(key)
                self._hits += 1
                if _obs.STATE.enabled:
                    self._instruments().factor_hits.inc()
                return cached
            started = monotonic() if _obs.STATE.enabled else 0.0
            csc = self._load(overlay)
            norm1 = float(np.abs(csc).sum(axis=0).max())
            try:
                with np.errstate(all="ignore"), warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    lu = splu(csc)
            except (ValueError, ArithmeticError, RuntimeError) as exc:
                estimate = condition_estimate(csc)
                raise SingularNetworkError(
                    f"Sparse steady-state solve failed ({exc}); 1-norm "
                    f"condition estimate {estimate:.3e}",
                    condition_estimate=estimate) from exc
            self._factorizations += 1
            factorization = Factorization(lu, key, norm1)
            self._lru[key] = factorization
            evicted = False
            if len(self._lru) > self._capacity:
                self._lru.popitem(last=False)
                self._evictions += 1
                evicted = True
            if _obs.STATE.enabled:
                handles = self._instruments()
                handles.factorizations.inc()
                handles.factorize_seconds.observe(monotonic() - started)
                if evicted:
                    handles.factor_evictions.inc()
                _obs.STATE.tracer.event(
                    "operator.factorize", cached=len(self._lru),
                    evicted=evicted)
            return factorization

    # -- solving ------------------------------------------------------

    def solve(self, diag_overlay: np.ndarray,
              rhs: np.ndarray) -> np.ndarray:
        """Solve ``(static + diag(overlay)) T = rhs`` for one RHS.

        Semantically identical to the legacy
        :meth:`repro.thermal.ThermalNetwork.solve`: raises
        :class:`SingularNetworkError` on singular or numerically
        degenerate systems, chaining the linear-algebra diagnostic and
        a 1-norm condition estimate.
        """
        overlay = self._checked_overlay(diag_overlay)
        rhs_arr = np.asarray(rhs, dtype=float)
        if rhs_arr.shape != (self._n,):
            raise ConfigurationError(
                f"RHS must have shape ({self._n},), got {rhs_arr.shape}")
        handles = self._instruments() if _obs.STATE.enabled else None
        sampled = handles is not None and handles.sample_solve()
        started = monotonic() if sampled else 0.0
        factorization = self.factor(overlay)
        temps = factorization.solve(rhs_arr)
        with self._lock:
            self._solves += 1
        self._guard(temps, rhs_arr, overlay, factorization)
        if handles is not None:
            handles.solves.inc()
            if sampled:
                handles.solve_seconds.observe(monotonic() - started)
        return temps

    def solve_many(self, diag_overlay: np.ndarray,
                   rhs_columns: np.ndarray) -> np.ndarray:
        """Solve one matrix against an ``(n, k)`` block of RHS columns.

        Factorizes (or reuses) once and back-substitutes every column —
        the batched entry point for sweeps, lookup-table screens, and
        multi-workload evaluations that share an operating point.
        Returns an ``(n, k)`` block of temperature columns.
        """
        overlay = self._checked_overlay(diag_overlay)
        block = np.asarray(rhs_columns, dtype=float)
        if block.ndim != 2 or block.shape[0] != self._n:
            raise ConfigurationError(
                f"RHS block must have shape ({self._n}, k), got "
                f"{block.shape}")
        handles = self._instruments() if _obs.STATE.enabled else None
        sampled = handles is not None and handles.sample_solve()
        started = monotonic() if sampled else 0.0
        factorization = self.factor(overlay)
        temps = factorization.solve(block)
        with self._lock:
            self._solves += block.shape[1]
        self._guard(temps, block, overlay, factorization)
        if handles is not None:
            handles.solves.inc(block.shape[1])
            if sampled:
                handles.solve_seconds.observe(monotonic() - started)
        return temps

    def solve_adjoint(self, diag_overlay: np.ndarray,
                      rhs: np.ndarray) -> np.ndarray:
        """Solve the transposed system ``(static + diag(overlay))^T x = rhs``.

        The gradient entry point: factors through the same LRU as the
        forward path (an adjoint at a just-solved operating point is a
        guaranteed cache hit) and back-substitutes the transposed
        system from the shared factor.  Accepts one RHS vector or an
        ``(n, k)`` block of adjoint right-hand sides; the solve count
        lands in :attr:`OperatorStats.adjoint_solves`, never in
        ``solves``, so forward-solve comparisons stay clean.
        """
        overlay = self._checked_overlay(diag_overlay)
        rhs_arr = np.asarray(rhs, dtype=float)
        if rhs_arr.shape[0] != self._n or rhs_arr.ndim > 2:
            raise ConfigurationError(
                f"Adjoint RHS must have shape ({self._n},) or "
                f"({self._n}, k), got {rhs_arr.shape}")
        factorization = self.factor(overlay)
        duals = factorization.solve_transpose(rhs_arr)
        count = 1 if rhs_arr.ndim == 1 else rhs_arr.shape[1]
        with self._lock:
            self._adjoint_solves += count
        self._guard(duals, rhs_arr, overlay, factorization)
        return duals

    def _guard(self, temps: np.ndarray, rhs: np.ndarray,
               overlay: np.ndarray,
               factorization: Factorization) -> None:
        """Singularity/degeneracy checks shared by every solve path.

        A singular-to-working-precision matrix often still factors (the
        pivots round to tiny nonzeros) and yields an absurdly amplified
        or non-finite solution; the dimensionless growth
        ``||x|| ||A|| / ||b||`` lower-bounds ``cond_1(A)``, and healthy
        thermal systems sit many orders of magnitude below the limit.
        The live factor is handed to :func:`condition_estimate` so the
        diagnostic reuses it instead of refactorizing the matrix it
        just factored.
        """
        if not np.all(np.isfinite(temps)):
            with self._lock:
                estimate = condition_estimate(self._load(overlay),
                                              lu=factorization._lu)
            raise SingularNetworkError(
                "Thermal system is singular or numerically degenerate "
                f"(1-norm condition estimate {estimate:.3e})",
                condition_estimate=estimate)
        rhs_scale = float(np.abs(rhs).max())
        if rhs_scale > 0.0:
            growth = (float(np.abs(temps).max())
                      * factorization.norm1 / rhs_scale)
            if growth > _DEGENERACY_GROWTH_LIMIT:
                with self._lock:
                    estimate = condition_estimate(self._load(overlay),
                                                  lu=factorization._lu)
                raise SingularNetworkError(
                    "Thermal system is numerically degenerate: solution "
                    f"amplification {growth:.3e} exceeds "
                    f"{_DEGENERACY_GROWTH_LIMIT:.1e} (1-norm condition "
                    f"estimate {estimate:.3e})",
                    condition_estimate=estimate)


def condition_estimate(matrix, lu=None) -> float:
    """Cheap 1-norm condition estimate ``||A||_1 * est(||A^-1||_1)``.

    Used on the failure path only: a Hager-style norm estimate against
    a sparse LU factor, orders of magnitude cheaper than a dense
    condition number.  When the caller already holds a factorization of
    ``matrix`` (the operator's guard path always does), pass it as
    ``lu`` and the estimate is pure back-substitution — no second
    ``splu`` of a matrix that was just factored.  Returns ``inf`` when
    the factorization fails (an exactly singular system).
    """
    csc = matrix.tocsc()
    norm_a = float(onenormest(csc))
    try:
        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            if lu is None:
                lu = splu(csc)
            # onenormest needs the adjoint too; for a real matrix that
            # is the transposed-system solve.
            inverse = LinearOperator(
                csc.shape, matvec=lu.solve,
                rmatvec=lambda b: lu.solve(b, trans="T"))
            norm_inv = float(onenormest(inverse))
    except (RuntimeError, ValueError, ArithmeticError):
        return float("inf")
    if not np.isfinite(norm_inv):
        return float("inf")
    return norm_a * norm_inv


__all__ = [
    "DEFAULT_FACTOR_CAPACITY",
    "Factorization",
    "OperatorStats",
    "ThermalOperator",
    "condition_estimate",
]
