"""Generic sparse thermal network with static base and dynamic overlays.

The steady-state balance is the KCL dual of Equation (14):

    sum_j g_ij (T_i - T_j) + g_amb,i (T_i - T_amb) = p_i    for every node i

written in matrix form ``G T = P``.  The network splits into

* a **static** part — all geometry-derived conductances, built once per
  package configuration and cached as a CSR matrix, and
* a **dynamic overlay** — per-evaluation diagonal increments (fan-dependent
  ambient coupling, Peltier ``-/+ alpha*I*T`` terms, leakage Taylor slopes)
  and right-hand-side injections (dynamic power, Joule heat, leakage
  constants, ambient sources),

so that one ``(omega, I_TEC)`` evaluation costs at most a single sparse
factorization of ``static + diag(overlay)`` — and often none at all:
solving is delegated to a lazily built
:class:`~repro.thermal.operator.ThermalOperator`, which applies overlays
in place through a precomputed diagonal index map and reuses cached
``splu`` factorizations across solves at the same operating point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix, diags

from ..errors import ConfigurationError
from .operator import (
    _DEGENERACY_GROWTH_LIMIT,
    ThermalOperator,
    condition_estimate,
)

__all__ = [
    "NodeInfo",
    "NodeKind",
    "ThermalNetwork",
    "condition_estimate",
]


class NodeKind(enum.Enum):
    """What a network node physically represents."""

    BULK = "bulk"              # a grid cell inside a conduction layer
    CHIP = "chip"              # a grid cell of the chip (power-generating)
    TEC_ABS = "tec-abs"        # TEC cold-side absorption node
    TEC_GEN = "tec-gen"        # TEC Joule-generation node
    TEC_REJ = "tec-rej"        # TEC hot-side rejection node
    FILLER = "filler"          # uncovered cell in the TEC layer
    PERIPHERY = "periphery"    # spreader/sink ring node beyond the chip


@dataclass(frozen=True)
class NodeInfo:
    """Metadata attached to a node.

    Attributes:
        name: Unique node identifier (for debugging and lookups).
        kind: Physical role of the node.
        layer: Stack layer the node belongs to.
        cell: Flat grid-cell index, or -1 for periphery nodes.
        heat_capacity: Lumped capacity in J/K (used by the transient
            solver; 0 means "quasi-static node").
    """

    name: str
    kind: NodeKind
    layer: str
    cell: int = -1
    heat_capacity: float = 0.0


class ThermalNetwork:
    """Sparse node/conductance graph with two-phase assembly.

    Phase 1 (build): :meth:`add_node` and :meth:`add_conductance` register
    geometry.  Phase 2 (:meth:`finalize`): the static CSR matrix is built.
    After finalization, :meth:`solve` accepts per-evaluation diagonal and
    RHS overlays.
    """

    def __init__(self) -> None:
        self._infos: List[NodeInfo] = []
        self._by_name: Dict[str, int] = {}
        self._rows: List[int] = []
        self._cols: List[int] = []
        self._vals: List[float] = []
        self._static: Optional[csr_matrix] = None
        self._operator: Optional[ThermalOperator] = None

    # -- phase 1: construction ------------------------------------------------

    def add_node(self, info: NodeInfo) -> int:
        """Register a node; returns its index."""
        if self._static is not None:
            raise ConfigurationError("Network already finalized")
        if info.name in self._by_name:
            raise ConfigurationError(f"Duplicate node name {info.name!r}")
        idx = len(self._infos)
        self._infos.append(info)
        self._by_name[info.name] = idx
        return idx

    def add_conductance(self, i: int, j: int, g: float) -> None:
        """Add a two-terminal thermal conductance ``g`` (W/K) between nodes.

        Contributes ``+g`` to both diagonals and ``-g`` off-diagonal,
        keeping the static matrix symmetric.
        """
        if self._static is not None:
            raise ConfigurationError("Network already finalized")
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise ConfigurationError(f"Self-conductance on node {i}")
        if g <= 0.0:
            raise ConfigurationError(
                f"Conductance must be positive, got {g} between "
                f"{self._infos[i].name} and {self._infos[j].name}")
        self._rows.extend((i, j, i, j))
        self._cols.extend((i, j, j, i))
        self._vals.extend((g, g, -g, -g))

    def add_grounded_conductance(self, i: int, g: float) -> None:
        """Add a *static* conductance from node ``i`` to the ambient rail.

        Only the diagonal term is stored here; the ambient source term
        ``g * T_amb`` must be supplied in the per-solve RHS overlay (the
        model layer owns the ambient temperature).
        """
        if self._static is not None:
            raise ConfigurationError("Network already finalized")
        self._check_index(i)
        if g <= 0.0:
            raise ConfigurationError(f"Conductance must be positive, got {g}")
        self._rows.append(i)
        self._cols.append(i)
        self._vals.append(g)

    def finalize(self) -> None:
        """Build the static CSR matrix; the network becomes immutable."""
        if self._static is not None:
            raise ConfigurationError("Network already finalized")
        n = len(self._infos)
        if n == 0:
            raise ConfigurationError("Network has no nodes")
        coo = coo_matrix(
            (np.array(self._vals, dtype=float),
             (np.array(self._rows, dtype=int),
              np.array(self._cols, dtype=int))),
            shape=(n, n))
        self._static = coo.tocsr()
        self._static.sum_duplicates()

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Ship a finalized network without its build-phase dead weight.

        The COO build lists are unreachable once :meth:`finalize` has
        run (every mutator raises), so they are dropped from the pickle
        stream.  When a shared-memory publication plane is open the
        static CSR arrays are published once and replaced by a
        descriptor, mirroring the
        :class:`~repro.thermal.operator.ThermalOperator` transport;
        without a plane (or on publication failure) the arrays embed in
        the stream with bit-identical values.
        """
        state = self.__dict__.copy()
        if self._static is not None:
            state["_rows"] = []
            state["_cols"] = []
            state["_vals"] = []
            from ..exec import shm as _shm
            plane = _shm.active_plane()
            if plane is not None:
                static = self._static
                descriptor = plane.publish(self, {
                    "data": static.data,
                    "indices": static.indices,
                    "indptr": static.indptr,
                })
                if descriptor is not None:
                    state["_static_shm"] = (descriptor, static.shape)
                    state.pop("_static", None)
        return state

    def __setstate__(self, state: dict) -> None:
        packed = state.pop("_static_shm", None)
        self.__dict__.update(state)
        if packed is not None:
            descriptor, shape = packed
            from ..exec import shm as _shm
            arrays = _shm.attach_arrays(descriptor)
            self._static = csr_matrix(
                (arrays["data"], arrays["indices"], arrays["indptr"]),
                shape=shape, copy=False)

    # -- queries --------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of registered nodes."""
        return len(self._infos)

    @property
    def finalized(self) -> bool:
        """True once :meth:`finalize` has run."""
        return self._static is not None

    def info(self, idx: int) -> NodeInfo:
        """Metadata of node ``idx``."""
        self._check_index(idx)
        return self._infos[idx]

    def index_of(self, name: str) -> int:
        """Node index by unique name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"No node named {name!r}") from None

    def nodes_of_kind(self, kind: NodeKind) -> List[int]:
        """Indices of all nodes with the given kind."""
        return [i for i, info in enumerate(self._infos) if info.kind is kind]

    def nodes_of_layer(self, layer: str) -> List[int]:
        """Indices of all nodes in the given stack layer."""
        return [i for i, info in enumerate(self._infos)
                if info.layer == layer]

    @property
    def static_matrix(self) -> csr_matrix:
        """The finalized static conductance matrix (copy)."""
        if self._static is None:
            raise ConfigurationError("Network not finalized")
        return self._static.copy()

    def heat_capacities(self) -> np.ndarray:
        """Per-node lumped heat capacities (J/K)."""
        return np.array([info.heat_capacity for info in self._infos])

    # -- phase 2: solving -----------------------------------------------------

    @property
    def operator(self) -> ThermalOperator:
        """The build-once/update-many solve engine (lazily constructed).

        One operator per finalized network: it owns the precomputed CSC
        structure, the diagonal index map, and the LRU of cached
        factorizations.  All :meth:`solve`/:meth:`solve_many` calls route
        through it, so factor reuse accumulates across every consumer of
        this network.
        """
        if self._static is None:
            raise ConfigurationError("Network not finalized")
        if self._operator is None:
            self._operator = ThermalOperator(self._static)
        return self._operator

    def configure_operator(self, factor_capacity: int,
                           overlay_quantum: float = 0.0) -> ThermalOperator:
        """Replace the operator with one using the given cache settings.

        ``overlay_quantum > 0`` trades bit-exactness for extra factor
        reuse (see :mod:`repro.thermal.operator`); the default of 0 keys
        the cache on exact overlay bytes.
        """
        if self._static is None:
            raise ConfigurationError("Network not finalized")
        self._operator = ThermalOperator(
            self._static, factor_capacity=factor_capacity,
            overlay_quantum=overlay_quantum)
        return self._operator

    def system(self, diag_overlay: np.ndarray, rhs: np.ndarray,
               ) -> Tuple[csr_matrix, np.ndarray]:
        """Assemble ``(static + diag(overlay), rhs)`` for one evaluation.

        This materializes a fresh matrix — diagnostics and fault
        injection use it; the hot solve paths go through
        :attr:`operator` instead.
        """
        if self._static is None:
            raise ConfigurationError("Network not finalized")
        overlay, rhs_arr = self._checked_overlays(diag_overlay, rhs)
        matrix = self._static + diags(overlay, format="csr")
        return matrix, rhs_arr

    def solve(self, diag_overlay: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one linear system ``(static + diag) T = rhs``.

        Raises :class:`~repro.errors.SingularNetworkError` when the
        matrix is singular (typically a node with no path to ambient) or
        the solution is non-finite.  The error chains the underlying
        linear-algebra diagnostic and carries a condition-number estimate
        of the failed system.
        """
        overlay, rhs_arr = self._checked_overlays(diag_overlay, rhs)
        return self.operator.solve(overlay, rhs_arr)

    def solve_many(self, diag_overlay: np.ndarray,
                   rhs_columns: np.ndarray) -> np.ndarray:
        """Solve one matrix against an ``(n, k)`` block of RHS columns.

        Factorizes (or reuses a cached factor) once and back-substitutes
        every column; returns the ``(n, k)`` temperature block.  Same
        failure semantics as :meth:`solve`.
        """
        if self._static is None:
            raise ConfigurationError("Network not finalized")
        return self.operator.solve_many(diag_overlay, rhs_columns)

    def _checked_overlays(self, diag_overlay: np.ndarray,
                          rhs: np.ndarray,
                          ) -> Tuple[np.ndarray, np.ndarray]:
        if self._static is None:
            raise ConfigurationError("Network not finalized")
        n = self.node_count
        overlay = np.asarray(diag_overlay, dtype=float)
        rhs_arr = np.asarray(rhs, dtype=float)
        if overlay.shape != (n,) or rhs_arr.shape != (n,):
            raise ConfigurationError(
                f"Overlay/RHS must have shape ({n},), got "
                f"{overlay.shape} and {rhs_arr.shape}")
        return overlay, rhs_arr

    def _check_index(self, idx: int) -> None:
        if not (0 <= idx < len(self._infos)):
            raise ConfigurationError(
                f"Node index {idx} out of range "
                f"(network has {len(self._infos)} nodes)")
