"""Generic sparse thermal network with static base and dynamic overlays.

The steady-state balance is the KCL dual of Equation (14):

    sum_j g_ij (T_i - T_j) + g_amb,i (T_i - T_amb) = p_i    for every node i

written in matrix form ``G T = P``.  The network splits into

* a **static** part — all geometry-derived conductances, built once per
  package configuration and cached as a CSR matrix, and
* a **dynamic overlay** — per-evaluation diagonal increments (fan-dependent
  ambient coupling, Peltier ``-/+ alpha*I*T`` terms, leakage Taylor slopes)
  and right-hand-side injections (dynamic power, Joule heat, leakage
  constants, ambient sources),

so that one ``(omega, I_TEC)`` evaluation costs a single sparse
factorization of ``static + diag(overlay)``.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix, diags
from scipy.sparse.linalg import (
    LinearOperator,
    MatrixRankWarning,
    onenormest,
    splu,
    spsolve,
)

from ..errors import ConfigurationError, SingularNetworkError

#: Dimensionless solution-amplification limit above which a finite
#: sparse solve is declared numerically degenerate (see
#: :meth:`ThermalNetwork.solve`).  Physical packages stay below ~1e6.
_DEGENERACY_GROWTH_LIMIT = 1.0e13


class NodeKind(enum.Enum):
    """What a network node physically represents."""

    BULK = "bulk"              # a grid cell inside a conduction layer
    CHIP = "chip"              # a grid cell of the chip (power-generating)
    TEC_ABS = "tec-abs"        # TEC cold-side absorption node
    TEC_GEN = "tec-gen"        # TEC Joule-generation node
    TEC_REJ = "tec-rej"        # TEC hot-side rejection node
    FILLER = "filler"          # uncovered cell in the TEC layer
    PERIPHERY = "periphery"    # spreader/sink ring node beyond the chip


@dataclass(frozen=True)
class NodeInfo:
    """Metadata attached to a node.

    Attributes:
        name: Unique node identifier (for debugging and lookups).
        kind: Physical role of the node.
        layer: Stack layer the node belongs to.
        cell: Flat grid-cell index, or -1 for periphery nodes.
        heat_capacity: Lumped capacity in J/K (used by the transient
            solver; 0 means "quasi-static node").
    """

    name: str
    kind: NodeKind
    layer: str
    cell: int = -1
    heat_capacity: float = 0.0


class ThermalNetwork:
    """Sparse node/conductance graph with two-phase assembly.

    Phase 1 (build): :meth:`add_node` and :meth:`add_conductance` register
    geometry.  Phase 2 (:meth:`finalize`): the static CSR matrix is built.
    After finalization, :meth:`solve` accepts per-evaluation diagonal and
    RHS overlays.
    """

    def __init__(self) -> None:
        self._infos: List[NodeInfo] = []
        self._by_name: Dict[str, int] = {}
        self._rows: List[int] = []
        self._cols: List[int] = []
        self._vals: List[float] = []
        self._static: Optional[csr_matrix] = None

    # -- phase 1: construction ------------------------------------------------

    def add_node(self, info: NodeInfo) -> int:
        """Register a node; returns its index."""
        if self._static is not None:
            raise ConfigurationError("Network already finalized")
        if info.name in self._by_name:
            raise ConfigurationError(f"Duplicate node name {info.name!r}")
        idx = len(self._infos)
        self._infos.append(info)
        self._by_name[info.name] = idx
        return idx

    def add_conductance(self, i: int, j: int, g: float) -> None:
        """Add a two-terminal thermal conductance ``g`` (W/K) between nodes.

        Contributes ``+g`` to both diagonals and ``-g`` off-diagonal,
        keeping the static matrix symmetric.
        """
        if self._static is not None:
            raise ConfigurationError("Network already finalized")
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise ConfigurationError(f"Self-conductance on node {i}")
        if g <= 0.0:
            raise ConfigurationError(
                f"Conductance must be positive, got {g} between "
                f"{self._infos[i].name} and {self._infos[j].name}")
        self._rows.extend((i, j, i, j))
        self._cols.extend((i, j, j, i))
        self._vals.extend((g, g, -g, -g))

    def add_grounded_conductance(self, i: int, g: float) -> None:
        """Add a *static* conductance from node ``i`` to the ambient rail.

        Only the diagonal term is stored here; the ambient source term
        ``g * T_amb`` must be supplied in the per-solve RHS overlay (the
        model layer owns the ambient temperature).
        """
        if self._static is not None:
            raise ConfigurationError("Network already finalized")
        self._check_index(i)
        if g <= 0.0:
            raise ConfigurationError(f"Conductance must be positive, got {g}")
        self._rows.append(i)
        self._cols.append(i)
        self._vals.append(g)

    def finalize(self) -> None:
        """Build the static CSR matrix; the network becomes immutable."""
        if self._static is not None:
            raise ConfigurationError("Network already finalized")
        n = len(self._infos)
        if n == 0:
            raise ConfigurationError("Network has no nodes")
        coo = coo_matrix(
            (np.array(self._vals, dtype=float),
             (np.array(self._rows, dtype=int),
              np.array(self._cols, dtype=int))),
            shape=(n, n))
        self._static = coo.tocsr()
        self._static.sum_duplicates()

    # -- queries --------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of registered nodes."""
        return len(self._infos)

    @property
    def finalized(self) -> bool:
        """True once :meth:`finalize` has run."""
        return self._static is not None

    def info(self, idx: int) -> NodeInfo:
        """Metadata of node ``idx``."""
        self._check_index(idx)
        return self._infos[idx]

    def index_of(self, name: str) -> int:
        """Node index by unique name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"No node named {name!r}") from None

    def nodes_of_kind(self, kind: NodeKind) -> List[int]:
        """Indices of all nodes with the given kind."""
        return [i for i, info in enumerate(self._infos) if info.kind is kind]

    def nodes_of_layer(self, layer: str) -> List[int]:
        """Indices of all nodes in the given stack layer."""
        return [i for i, info in enumerate(self._infos)
                if info.layer == layer]

    @property
    def static_matrix(self) -> csr_matrix:
        """The finalized static conductance matrix (copy)."""
        if self._static is None:
            raise ConfigurationError("Network not finalized")
        return self._static.copy()

    def heat_capacities(self) -> np.ndarray:
        """Per-node lumped heat capacities (J/K)."""
        return np.array([info.heat_capacity for info in self._infos])

    # -- phase 2: solving -----------------------------------------------------

    def system(self, diag_overlay: np.ndarray, rhs: np.ndarray,
               ) -> Tuple[csr_matrix, np.ndarray]:
        """Assemble ``(static + diag(overlay), rhs)`` for one evaluation."""
        if self._static is None:
            raise ConfigurationError("Network not finalized")
        n = self.node_count
        overlay = np.asarray(diag_overlay, dtype=float)
        rhs_arr = np.asarray(rhs, dtype=float)
        if overlay.shape != (n,) or rhs_arr.shape != (n,):
            raise ConfigurationError(
                f"Overlay/RHS must have shape ({n},), got "
                f"{overlay.shape} and {rhs_arr.shape}")
        matrix = self._static + diags(overlay, format="csr")
        return matrix, rhs_arr

    def solve(self, diag_overlay: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one linear system ``(static + diag) T = rhs``.

        Raises :class:`SingularNetworkError` when the matrix is singular
        (typically a node with no path to ambient) or the solution is
        non-finite.  The error chains the underlying linear-algebra
        diagnostic and carries a condition-number estimate of the failed
        system.
        """
        matrix, rhs_arr = self.system(diag_overlay, rhs)
        csc = matrix.tocsc()
        try:
            with np.errstate(all="ignore"), \
                    warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                temps = spsolve(csc, rhs_arr)
        except (ValueError, ArithmeticError, RuntimeError) as exc:
            estimate = condition_estimate(csc)
            raise SingularNetworkError(
                f"Sparse steady-state solve failed ({exc}); 1-norm "
                f"condition estimate {estimate:.3e}",
                condition_estimate=estimate) from exc
        if not np.all(np.isfinite(temps)):
            # spsolve signals an exactly singular factor through a
            # MatrixRankWarning plus a NaN solution rather than an
            # exception; surface the warning as the chained cause.
            cause = next(
                (w.message for w in caught
                 if isinstance(w.message, MatrixRankWarning)), None)
            estimate = condition_estimate(csc)
            raise SingularNetworkError(
                "Thermal system is singular or numerically degenerate "
                f"(1-norm condition estimate {estimate:.3e})",
                condition_estimate=estimate) from cause
        # A matrix singular to working precision often still factors
        # (the pivots round to tiny nonzeros) and yields an absurdly
        # amplified, finite solution rather than NaN.  The dimensionless
        # growth ``||x|| ||A|| / ||b||`` lower-bounds cond_1(A); healthy
        # thermal systems sit many orders of magnitude below the limit.
        rhs_scale = float(np.abs(rhs_arr).max())
        if rhs_scale > 0.0:
            growth = (float(np.abs(temps).max())
                      * float(abs(csc).sum(axis=0).max()) / rhs_scale)
            if growth > _DEGENERACY_GROWTH_LIMIT:
                estimate = condition_estimate(csc)
                raise SingularNetworkError(
                    "Thermal system is numerically degenerate: solution "
                    f"amplification {growth:.3e} exceeds "
                    f"{_DEGENERACY_GROWTH_LIMIT:.1e} (1-norm condition "
                    f"estimate {estimate:.3e})",
                    condition_estimate=estimate)
        return temps

    def _check_index(self, idx: int) -> None:
        if not (0 <= idx < len(self._infos)):
            raise ConfigurationError(
                f"Node index {idx} out of range "
                f"(network has {len(self._infos)} nodes)")


def condition_estimate(matrix: csr_matrix) -> float:
    """Cheap 1-norm condition estimate ``||A||_1 * est(||A^-1||_1)``.

    Used on the failure path only: one sparse LU factorization plus a
    Hager-style norm estimate, orders of magnitude cheaper than a dense
    condition number.  Returns ``inf`` when the factorization itself
    fails (an exactly singular system).
    """
    csc = matrix.tocsc()
    norm_a = float(onenormest(csc))
    try:
        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            lu = splu(csc)
            # onenormest needs the adjoint too; for a real matrix that
            # is the transposed-system solve.
            inverse = LinearOperator(
                csc.shape, matvec=lu.solve,
                rmatvec=lambda b: lu.solve(b, trans="T"))
            norm_inv = float(onenormest(inverse))
    except (RuntimeError, ValueError, ArithmeticError):
        return float("inf")
    if not np.isfinite(norm_inv):
        return float("inf")
    return norm_a * norm_inv
