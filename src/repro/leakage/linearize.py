"""Taylor linearization of the leakage law: Equation (4).

The paper (following its reference [13]) replaces the exponential leakage
law with its linear Taylor term around a reference temperature,

    p_leakage(T) = a * (T - T_ref) + b,

which keeps the thermal balance equations linear in T and dramatically
speeds up the leakage/temperature fixed point.  Two ways to get (a, b):

* :func:`tangent_linearization` — the local tangent at ``T_ref`` (exact
  slope; what the outer relinearization loop uses).
* :func:`regression_linearization` — the paper's calibration protocol: a
  least-squares line through sampled (T, P) pairs, e.g. the ten McPAT
  points between 300 K and 390 K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..errors import CalibrationError
from .model import CellLeakageModel


@dataclass(frozen=True)
class TaylorCoefficients:
    """Per-cell linearized leakage ``p = a*(T - t_ref) + b``.

    Attributes:
        a: Slope array, W/K per cell.
        b: Offset array, W per cell (leakage at ``t_ref``).
        t_ref: Reference temperature(s) the expansion is taken around, K.
            Either a scalar (common reference) or a per-cell array.
    """

    a: np.ndarray
    b: np.ndarray
    t_ref: Union[float, np.ndarray]

    def power(self, temperatures: np.ndarray) -> np.ndarray:
        """Linearized per-cell leakage, W, at ``temperatures``, K."""
        return self.a * (np.asarray(temperatures) - self.t_ref) + self.b

    def constant_term(self) -> np.ndarray:
        """The temperature-independent injection ``b - a * t_ref`` (W).

        Folding ``a*T`` into the conductance matrix leaves this constant on
        the right-hand side of ``G T = P``.
        """
        return self.b - self.a * self.t_ref

    @property
    def total_slope(self) -> float:
        """Sum of slopes (W/K): the strength of the leakage feedback loop."""
        return float(self.a.sum())


def tangent_linearization(model: CellLeakageModel,
                          t_ref: Union[float, np.ndarray],
                          ) -> TaylorCoefficients:
    """First-order Taylor expansion of the exponential law at ``t_ref``.

    ``t_ref`` may be a scalar (e.g. the average chip temperature, as the
    paper suggests) or a per-cell array (the relinearization loop passes
    the previous solve's temperatures for fast convergence).
    """
    t_ref_arr = np.broadcast_to(
        np.asarray(t_ref, dtype=float), model.nominal_powers.shape).copy()
    if (t_ref_arr <= 0.0).any():
        raise CalibrationError("t_ref must be in kelvin (> 0)")
    b = model.power(t_ref_arr)
    a = model.beta * b
    scalar_ref = np.isscalar(t_ref) or np.asarray(t_ref).ndim == 0
    return TaylorCoefficients(a=a, b=b,
                              t_ref=float(t_ref) if scalar_ref else t_ref_arr)


def regression_linearization(model: CellLeakageModel,
                             sample_temperatures: Sequence[float],
                             ) -> TaylorCoefficients:
    """Least-squares line through sampled leakage values (paper protocol).

    The model is evaluated at each sample temperature; a straight line
    ``p = a*(T - T_mid) + b`` is fit per cell with ``T_mid`` the mean of
    the sample temperatures.
    """
    temps = np.asarray(sample_temperatures, dtype=float)
    if temps.size < 2 or np.unique(temps).size < 2:
        raise CalibrationError(
            "Need at least two distinct sample temperatures")
    if (temps <= 0.0).any():
        raise CalibrationError("Sample temperatures must be in kelvin (> 0)")
    t_mid = float(temps.mean())
    # samples[k, c] = leakage of cell c at temperature temps[k]
    samples = np.stack([
        model.power(np.full(model.cell_count, t)) for t in temps
    ])
    design = np.column_stack([temps - t_mid, np.ones_like(temps)])
    solution, _, rank, _ = np.linalg.lstsq(design, samples, rcond=None)
    if rank < 2:
        raise CalibrationError("Degenerate leakage regression")
    return TaylorCoefficients(a=solution[0], b=solution[1], t_ref=t_mid)
