"""Exponential leakage-power model at unit and grid-cell granularity.

Subthreshold leakage grows exponentially with temperature.  We use the
standard compact form

    P_leak(T) = P_nom * exp(beta * (T - T_nom))

per functional unit, with ``P_nom`` the unit's leakage at the nominal
temperature ``T_nom`` and ``beta`` the technology's exponential
sensitivity (1/K).  The thermal network needs leakage per grid cell;
:func:`build_cell_leakage` distributes each unit's nominal leakage over
its cells by covered area and returns a :class:`CellLeakageModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

import numpy as np

from ..errors import ConfigurationError
from ..geometry import CellCoverage


@dataclass(frozen=True)
class UnitLeakageSpec:
    """Leakage of one functional unit at the nominal temperature.

    Attributes:
        name: Functional unit name (must exist in the floorplan).
        nominal_power: Leakage power in W at ``t_nominal``.
    """

    name: str
    nominal_power: float

    def __post_init__(self) -> None:
        if self.nominal_power < 0.0:
            raise ConfigurationError(
                f"{self.name}: nominal leakage must be >= 0, got "
                f"{self.nominal_power}")


class CellLeakageModel:
    """Per-grid-cell exponential leakage.

    Attributes:
        nominal_powers: Array of per-cell leakage (W) at ``t_nominal``.
        beta: Exponential temperature sensitivity, 1/K.
        t_nominal: Temperature at which ``nominal_powers`` holds, K.
    """

    def __init__(self, nominal_powers: np.ndarray, beta: float,
                 t_nominal: float):
        powers = np.asarray(nominal_powers, dtype=float)
        if powers.ndim != 1:
            raise ConfigurationError(
                f"nominal_powers must be 1-D, got shape {powers.shape}")
        if (powers < 0.0).any():
            raise ConfigurationError("nominal_powers must be >= 0")
        if beta <= 0.0:
            raise ConfigurationError(f"beta must be positive, got {beta}")
        if t_nominal <= 0.0:
            raise ConfigurationError(
                f"t_nominal must be in kelvin (> 0), got {t_nominal}")
        self.nominal_powers = powers
        self.beta = float(beta)
        self.t_nominal = float(t_nominal)

    @property
    def cell_count(self) -> int:
        """Number of cells the model covers."""
        return self.nominal_powers.size

    def power(self, temperatures: np.ndarray) -> np.ndarray:
        """Per-cell leakage power (W) at the given cell temperatures (K)."""
        temps = self._check_temps(temperatures)
        return self.nominal_powers * np.exp(
            self.beta * (temps - self.t_nominal))

    def total_power(self, temperatures: np.ndarray) -> float:
        """Total chip leakage (W): Equation (11)."""
        return float(self.power(temperatures).sum())

    def power_derivative(self, temperatures: np.ndarray) -> np.ndarray:
        """dP/dT per cell at the given temperatures, W/K."""
        return self.beta * self.power(temperatures)

    def scaled(self, factor: float) -> "CellLeakageModel":
        """Copy with all nominal powers multiplied by ``factor``."""
        if factor < 0.0:
            raise ConfigurationError(f"factor must be >= 0, got {factor}")
        return CellLeakageModel(self.nominal_powers * factor, self.beta,
                                self.t_nominal)

    def _check_temps(self, temperatures: np.ndarray) -> np.ndarray:
        temps = np.asarray(temperatures, dtype=float)
        if temps.shape != self.nominal_powers.shape:
            raise ConfigurationError(
                f"Expected {self.nominal_powers.shape} temperatures, got "
                f"{temps.shape}")
        if (temps <= 0.0).any():
            raise ConfigurationError("Temperatures must be in kelvin (> 0)")
        return temps


def build_cell_leakage(
    coverage: CellCoverage,
    unit_specs: Iterable[UnitLeakageSpec],
    beta: float,
    t_nominal: float,
) -> CellLeakageModel:
    """Distribute per-unit nominal leakage over grid cells by area.

    Each unit's nominal leakage spreads uniformly (per unit area) over the
    cells it covers, exactly like dynamic power in
    :meth:`repro.geometry.CellCoverage.power_map`.
    """
    unit_powers: Dict[str, float] = {}
    for spec in unit_specs:
        if spec.name in unit_powers:
            raise ConfigurationError(
                f"Duplicate leakage spec for unit {spec.name!r}")
        unit_powers[spec.name] = spec.nominal_power
    cell_powers = coverage.power_map(unit_powers)
    return CellLeakageModel(cell_powers, beta, t_nominal)
