"""Leakage-power substrate.

Implements the exponential temperature dependence of subthreshold leakage,
the Taylor linearization of Equation (4), the paper's ten-point McPAT-style
calibration protocol (linear regression of leakage samples over
300-390 K), and a lumped fixed-point reference solver used to validate the
network solver's leakage handling.
"""

from .model import CellLeakageModel, UnitLeakageSpec, build_cell_leakage
from .linearize import TaylorCoefficients, tangent_linearization, \
    regression_linearization
from .calibrate import LeakageCalibration, mcpat_substitute_samples, \
    calibrate_from_samples
from .iterative import lumped_fixed_point, LumpedLeakageResult

__all__ = [
    "CellLeakageModel",
    "UnitLeakageSpec",
    "build_cell_leakage",
    "TaylorCoefficients",
    "tangent_linearization",
    "regression_linearization",
    "LeakageCalibration",
    "mcpat_substitute_samples",
    "calibrate_from_samples",
    "lumped_fixed_point",
    "LumpedLeakageResult",
]
