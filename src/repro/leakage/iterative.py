"""Lumped leakage/temperature fixed point — the reference iteration.

Section 4 of the paper describes the naive iterative scheme: compute
leakage at an assumed temperature, update the temperature from the thermal
model, recompute leakage, and repeat until convergence.  This module
implements that scheme for a single lumped node

    T = T_amb + (P_dyn + P_leak(T)) / g

It serves three purposes: a validation oracle for the network solver's
leakage handling, a fast analytic picture of the thermal-runaway boundary
(the fixed point exists iff ``beta * P_leak(T*) < g`` at the solution),
and the didactic example in ``examples/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError, ThermalRunawayError
from ..obs import runtime as _obs
from ..obs.metrics import DEFAULT_COUNT_BUCKETS


@dataclass
class LumpedLeakageResult:
    """Converged lumped fixed point.

    Attributes:
        temperature: Steady-state temperature, K.
        leakage_power: Leakage power at the converged temperature, W.
        iterations: Number of fixed-point iterations performed.
    """

    temperature: float
    leakage_power: float
    iterations: int


def lumped_fixed_point(
    dynamic_power: float,
    conductance: float,
    ambient: float,
    leakage: Callable[[float], float],
    tolerance: float = 1e-6,
    max_iterations: int = 1000,
    runaway_ceiling: float = 1000.0,
) -> LumpedLeakageResult:
    """Solve ``T = ambient + (P_dyn + leakage(T)) / g`` by iteration.

    Args:
        dynamic_power: Temperature-independent power, W.
        conductance: Lumped conductance to ambient, W/K.
        ambient: Ambient temperature, K.
        leakage: Callable mapping temperature (K) to leakage power (W).
        tolerance: Convergence threshold on successive temperatures, K.
        max_iterations: Iteration cap before declaring divergence.
        runaway_ceiling: Temperature (K) above which thermal runaway is
            declared immediately.

    Raises:
        ThermalRunawayError: If the iteration diverges — the physical
            positive-feedback runaway of Section 6.2.
    """
    if conductance <= 0.0:
        raise ConfigurationError(
            f"Conductance must be positive, got {conductance}")
    if dynamic_power < 0.0:
        raise ConfigurationError(
            f"Dynamic power must be >= 0, got {dynamic_power}")
    if ambient <= 0.0:
        raise ConfigurationError(
            f"Ambient must be in kelvin (> 0), got {ambient}")

    temperature = ambient
    previous_change = float("inf")
    growth_strikes = 0
    for iteration in range(1, max_iterations + 1):
        p_leak = leakage(temperature)
        if p_leak < 0.0:
            raise ConfigurationError(
                f"Leakage callable returned negative power {p_leak}")
        updated = ambient + (dynamic_power + p_leak) / conductance
        if updated > runaway_ceiling:
            raise ThermalRunawayError(
                f"Lumped fixed point exceeded {runaway_ceiling} K after "
                f"{iteration} iterations",
                max_temperature=updated)
        change = abs(updated - temperature)
        if change < tolerance:
            if _obs.STATE.enabled:
                _obs.STATE.metrics.histogram(
                    "leakage.lumped.iterations",
                    buckets=DEFAULT_COUNT_BUCKETS).observe(iteration)
            return LumpedLeakageResult(
                temperature=updated,
                leakage_power=leakage(updated),
                iterations=iteration,
            )
        # Early divergence detection: monotonically growing updates mean
        # the leakage feedback gain d(P_leak)/dT / g exceeds unity — the
        # runaway boundary of Section 6.2 — so bail out after three
        # consecutive growth strikes instead of walking to the ceiling.
        if change > previous_change * 1.0001:
            growth_strikes += 1
            if growth_strikes >= 3:
                gain = change / previous_change
                raise ThermalRunawayError(
                    f"Lumped fixed point diverging after {iteration} "
                    f"iterations (update {change:.3f} K growing with "
                    f"feedback gain ~{gain:.4f} >= 1)",
                    max_temperature=updated)
        else:
            growth_strikes = 0
        previous_change = change
        temperature = updated
    raise ThermalRunawayError(
        f"Lumped fixed point did not converge within {max_iterations} "
        "iterations (leakage feedback too strong)",
        max_temperature=temperature)
