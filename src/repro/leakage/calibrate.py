"""McPAT-substitute leakage calibration (Section 6.1 protocol).

The paper runs McPAT on the Alpha 21264 model at 22 nm for ten
temperatures evenly spaced in 300-390 K, then linearly regresses the
samples to get the Equation (4) coefficients.  McPAT is a closed C++
tool; we substitute a physically-shaped generator: each unit's leakage is
its area times a technology leakage density, with the BSIM-style
temperature dependence ``(T/T_nom)^2 * exp(beta * (T - T_nom))`` — the
same exponential-dominated shape McPAT produces.  The regression consumes
only the sampled (T, P) pairs, so the downstream pipeline is identical to
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..constants import (
    LEAKAGE_CAL_POINTS,
    LEAKAGE_CAL_T_MAX,
    LEAKAGE_CAL_T_MIN,
)
from ..errors import CalibrationError
from ..geometry import Floorplan

#: Leakage power density of the 22 nm process at the nominal temperature,
#: W/m^2.  Chosen so the Alpha 21264 die (253 mm^2) leaks a few watts at
#: 358 K, consistent with the paper's total-power scale (Figure 6 (d)/(f)).
DEFAULT_LEAKAGE_DENSITY = 8.5e4

#: Exponential temperature sensitivity of 22 nm subthreshold leakage, 1/K.
DEFAULT_BETA = 0.035

#: Nominal temperature of the density above, K.
DEFAULT_T_NOMINAL = 358.0

#: Logic-intensity multipliers: SRAM-dominated arrays leak less per area
#: than hot logic at matched density (high-Vt cells, power gating).
DEFAULT_UNIT_INTENSITY: Dict[str, float] = {
    "L2": 0.25, "L2_left": 0.25, "L2_right": 0.25,
    "Icache": 0.4, "Dcache": 0.4,
    "Bpred": 0.8, "DTB": 0.8, "ITB": 0.8,
    "FPMap": 1.0, "FPMul": 1.2, "FPReg": 1.1, "FPAdd": 1.2, "FPQ": 1.0,
    "IntMap": 1.1, "IntQ": 1.1, "IntReg": 1.4, "IntExec": 1.5,
    "LdStQ": 1.3,
}


def calibration_temperatures(
    t_min: float = LEAKAGE_CAL_T_MIN,
    t_max: float = LEAKAGE_CAL_T_MAX,
    points: int = LEAKAGE_CAL_POINTS,
) -> np.ndarray:
    """The paper's evenly spaced calibration temperatures (default 10)."""
    if points < 2:
        raise CalibrationError(f"Need at least 2 points, got {points}")
    if t_min <= 0.0 or t_max <= t_min:
        raise CalibrationError(
            f"Invalid temperature range [{t_min}, {t_max}]")
    return np.linspace(t_min, t_max, points)


def mcpat_substitute_samples(
    floorplan: Floorplan,
    temperatures: Sequence[float] = None,
    leakage_density: float = DEFAULT_LEAKAGE_DENSITY,
    beta: float = DEFAULT_BETA,
    t_nominal: float = DEFAULT_T_NOMINAL,
    unit_intensity: Dict[str, float] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Generate per-unit (temperature, leakage) samples, McPAT style.

    Returns ``{unit_name: [(T_k, P_k), ...]}`` over the calibration
    temperatures.  The generator applies the BSIM-shaped law
    ``P(T) = P_nom * (T/T_nom)^2 * exp(beta*(T - T_nom))`` where
    ``P_nom = density * intensity * area``.
    """
    if temperatures is None:
        temperatures = calibration_temperatures()
    temps = np.asarray(temperatures, dtype=float)
    if (temps <= 0.0).any():
        raise CalibrationError("Temperatures must be in kelvin (> 0)")
    if leakage_density <= 0.0 or beta <= 0.0 or t_nominal <= 0.0:
        raise CalibrationError("Density, beta, and t_nominal must be > 0")
    intensities = dict(DEFAULT_UNIT_INTENSITY)
    if unit_intensity:
        intensities.update(unit_intensity)

    samples: Dict[str, List[Tuple[float, float]]] = {}
    for unit in floorplan:
        intensity = intensities.get(unit.name, 1.0)
        p_nom = leakage_density * intensity * unit.area
        powers = p_nom * (temps / t_nominal) ** 2 \
            * np.exp(beta * (temps - t_nominal))
        samples[unit.name] = list(zip(temps.tolist(), powers.tolist()))
    return samples


@dataclass
class LeakageCalibration:
    """Fitted leakage description consumed by the thermal evaluator.

    Attributes:
        unit_nominal: Per-unit leakage (W) at ``t_nominal`` recovered from
            the regression.
        beta: Effective exponential sensitivity recovered from the samples.
        t_nominal: Reference temperature of ``unit_nominal``, K.
        unit_taylor: Per-unit Equation (4) coefficients ``(a, b)`` from the
            paper's linear regression, with ``t_ref`` the sample midpoint.
        t_ref: Midpoint temperature of the regression, K.
    """

    unit_nominal: Dict[str, float]
    beta: float
    t_nominal: float
    unit_taylor: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    t_ref: float = DEFAULT_T_NOMINAL

    @property
    def total_nominal(self) -> float:
        """Total chip leakage at the nominal temperature, W."""
        return sum(self.unit_nominal.values())


def calibrate_from_samples(
    samples: Dict[str, List[Tuple[float, float]]],
) -> LeakageCalibration:
    """Fit Equation (4) coefficients and an exponential from samples.

    Performs the paper's per-unit linear regression for ``(a, b)`` and
    additionally recovers an effective exponential model (log-linear
    regression) so the evaluator can relinearize at arbitrary reference
    temperatures.
    """
    if not samples:
        raise CalibrationError("No leakage samples supplied")

    unit_taylor: Dict[str, Tuple[float, float]] = {}
    unit_nominal: Dict[str, float] = {}
    betas: List[float] = []
    t_ref = None

    for name, pairs in samples.items():
        if len(pairs) < 2:
            raise CalibrationError(
                f"Unit {name!r}: need at least two samples")
        temps = np.array([t for t, _ in pairs], dtype=float)
        powers = np.array([p for _, p in pairs], dtype=float)
        if (powers <= 0.0).any():
            raise CalibrationError(
                f"Unit {name!r}: leakage samples must be positive")
        t_mid = float(temps.mean())
        if t_ref is None:
            t_ref = t_mid
        # Paper protocol: straight-line regression for (a, b).
        design = np.column_stack([temps - t_mid, np.ones_like(temps)])
        (a_fit, b_fit), _, rank, _ = np.linalg.lstsq(
            design, powers, rcond=None)
        if rank < 2:
            raise CalibrationError(f"Unit {name!r}: degenerate regression")
        unit_taylor[name] = (float(a_fit), float(b_fit))
        # Effective exponential: regress log(P) on T.
        (beta_fit, log_p_mid), _, _, _ = np.linalg.lstsq(
            design, np.log(powers), rcond=None)
        betas.append(float(beta_fit))
        unit_nominal[name] = float(np.exp(log_p_mid))

    beta = float(np.mean(betas))
    if beta <= 0.0:
        raise CalibrationError(
            f"Recovered beta must be positive, got {beta}")
    return LeakageCalibration(
        unit_nominal=unit_nominal,
        beta=beta,
        t_nominal=t_ref,
        unit_taylor=unit_taylor,
        t_ref=t_ref,
    )
