"""The work-unit scheduler: fan out, run, merge deterministically.

The coordinator's half of the parallel engine.  A job is decomposed
into :class:`~repro.exec.units.WorkUnit`\\ s, the shared inputs are
pickled once into a :class:`~repro.exec.units.WorkerContext`, and the
units run on a ``ProcessPoolExecutor`` whose initializer installs the
context per worker.  Three properties the rest of the library leans
on:

* **Deterministic merge.**  Results are collected in submission order
  (``futures`` are awaited positionally, never as-completed), and every
  unit is self-contained, so a parallel campaign's merged output is
  bit-identical to the serial loop's — regardless of worker count,
  scheduling order, or start method.
* **Serial fallback.**  ``workers <= 1`` (and any pool that fails to
  start or breaks mid-run) executes the same units in-process through
  the same worker shim, so the decomposed path never needs a working
  ``multiprocessing`` to produce results.
* **Telemetry adoption.**  When the coordinator's telemetry is
  enabled, each worker runs its units under worker-side sessions and
  ships exported spans/metrics home; :func:`run_units` re-parents them
  under per-unit ``unit`` spans on the live tracer, so
  ``repro trace summarize`` sees one merged tree.

Worker count resolution: an explicit argument wins, then the
``REPRO_WORKERS`` environment variable, then 0 (= classic serial path,
no unit decomposition).  Inside a worker — which inherits the
coordinator's environment — resolution always yields 0, so decomposed
entry points reached from a unit body never nest pools (see
:func:`resolve_workers`).  The ``REPRO_START_METHOD`` environment
variable (``fork``/``spawn``/``forkserver``) overrides the platform's
default start method; see docs/PARALLELISM.md for the trade-offs.
"""

from __future__ import annotations

import dataclasses
import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..analysis.campaign import CAMPAIGN_STAGES, BenchmarkComparison
from ..core import CoolingProblem, FailureReport, ResiliencePolicy
from ..errors import ConfigurationError, SolverError
from ..faults.plan import FaultPlan
from ..obs import runtime as _obs
from . import shm as _shm
from . import workers as _workers
from .pool import WorkerPool, WorkerPoolError
from .units import UnitResult, WorkUnit, WorkerContext

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_START_METHOD"

#: Environment variable selecting the executor backend.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Executor backends: ``process`` forks worker processes (the classic
#: pool), ``thread`` runs units on an in-process ``ThreadPoolExecutor``
#: sharing one operator cache (the solve hot path — SuperLU
#: factorization/back-substitution and the BLAS underneath — releases
#: the GIL, so threads overlap where it matters while paying zero
#: pickling and zero cold start), ``serial`` forces the decomposed
#: in-process loop regardless of the worker count.
EXECUTORS = ("process", "thread", "serial")


def resolve_executor(executor: Optional[str] = None) -> str:
    """Resolve the executor backend: argument, then env, then process.

    ``REPRO_EXECUTOR`` supplies the default; the explicit argument
    wins.  Unknown names raise :class:`ConfigurationError`.
    """
    if executor is None:
        executor = os.environ.get(EXECUTOR_ENV, "").strip() \
            or "process"
    name = str(executor).strip().lower()
    if name not in EXECUTORS:
        raise ConfigurationError(
            f"executor must be one of {EXECUTORS}, got {executor!r} "
            f"(set via argument or {EXECUTOR_ENV})")
    return name


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: argument, then environment, then 0.

    The returned count selects the execution path: ``0`` keeps the
    classic serial code (no unit decomposition at all), ``1`` runs the
    decomposed units through the in-process serial executor, ``N > 1``
    uses a process pool of N workers.

    Inside a worker (pool process or serial executor) the answer is
    always 0: pool workers inherit ``REPRO_WORKERS`` from the
    coordinator's environment, and honoring it there would nest
    process pools (or re-enter the serial executor) every time a unit
    internally calls a decomposed entry point such as
    :meth:`~repro.core.Evaluator.evaluate_many`.  Only the
    coordinator ever fans out.
    """
    if _workers.in_worker():
        return 0
    if workers is None:
        text = os.environ.get(WORKERS_ENV, "").strip()
        if not text:
            return 0
        try:
            workers = int(text)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {text!r}")
    count = int(workers)
    if count < 0:
        raise ConfigurationError(
            f"worker count must be >= 0, got {count}")
    return count


def _result_ok(result: UnitResult) -> bool:
    """Whether a unit completed without an error or unhandled lines."""
    return result.error is None and not result.unhandled


def _run_serial(context: WorkerContext, units: Sequence[WorkUnit],
                progress: Optional[Any] = None) -> List[UnitResult]:
    """Execute units in-process through the worker shim.

    Re-entrant: the previously installed runtime (if any) is saved and
    restored around the run, so a nested :func:`run_units` call — a
    unit whose body reaches a decomposed entry point — degrades to
    serial execution instead of corrupting the enclosing executor's
    state.
    """
    previous = _workers.install_runtime(context)
    try:
        results = []
        for unit in units:
            if progress is not None:
                progress.unit_running(unit.name)
            result = _workers.run_unit(unit)
            if progress is not None:
                progress.unit_done(unit.name, result.wall_seconds,
                                   ok=_result_ok(result))
            results.append(result)
        return results
    finally:
        _workers.restore_runtime(previous)


def _progress_callback(progress: Any, name: str):
    """A future done-callback reporting one unit to the board.

    Fires on an executor thread as soon as the worker finishes — the
    board updates live even while the positional await is still parked
    on an earlier, slower unit.
    """
    def _notify(future) -> None:
        try:
            result = future.result()
        except Exception:  # physlint: disable=RPR201
            # Whatever the future raises (BrokenProcessPool, a
            # pickling error, anything a worker re-raised) is
            # re-raised and handled by the positional await in
            # _run_pool; the callback only needs to mark the unit
            # failed on the board without masking that path.
            progress.unit_done(name, 0.0, ok=False)
            return
        progress.unit_done(name, result.wall_seconds,
                           ok=_result_ok(result))
    return _notify


def _run_pool(payload: bytes, units: Sequence[WorkUnit],
              max_workers: int,
              progress: Optional[Any] = None) -> List[UnitResult]:
    """Execute units on a process pool, collecting in submission order."""
    mp_context = None
    method = os.environ.get(START_METHOD_ENV, "").strip()
    if method:
        import multiprocessing
        mp_context = multiprocessing.get_context(method)
    with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=mp_context,
            initializer=_workers.initialize,
            initargs=(payload,)) as pool:
        futures = []
        for unit in units:
            future = pool.submit(_workers.run_unit, unit)
            if progress is not None:
                progress.unit_running(unit.name)
                future.add_done_callback(
                    _progress_callback(progress, unit.name))
            futures.append(future)
        # Awaiting positionally (not as_completed) is the merge
        # contract: results line up with submissions no matter which
        # worker finished first.
        return [future.result() for future in futures]


def _run_threads(context: WorkerContext, units: Sequence[WorkUnit],
                 max_workers: int,
                 progress: Optional[Any] = None) -> List[UnitResult]:
    """Execute units on an in-process thread pool.

    Every thread shares the coordinator's live problem templates —
    zero pickling, zero cold start, and one operator whose factor LRU
    serves all threads (the operator's internal lock serializes the
    cold factorizations; warm back-substitutions overlap because
    SuperLU releases the GIL).  Per-thread solve isolation comes from
    the model's thread-local overlay buffers.

    Telemetry is suspended for the duration: the tracer and metrics
    registry are single-threaded by design, so units must not touch
    them concurrently.  The saved state is restored on exit and
    :func:`run_units` still records per-unit spans at adoption.
    """
    thread_context = dataclasses.replace(context, telemetry=False)
    saved = (_obs.STATE.tracer, _obs.STATE.metrics, _obs.STATE.enabled)
    _obs.STATE.enabled = False
    previous = _workers.install_runtime(thread_context)
    try:
        with ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix="repro-exec") as pool:
            futures = []
            for unit in units:
                future = pool.submit(_workers.run_unit, unit)
                if progress is not None:
                    progress.unit_running(unit.name)
                    future.add_done_callback(
                        _progress_callback(progress, unit.name))
                futures.append(future)
            # Positional await: the same merge contract as the
            # process pool.
            return [future.result() for future in futures]
    finally:
        _workers.restore_runtime(previous)
        (_obs.STATE.tracer, _obs.STATE.metrics,
         _obs.STATE.enabled) = saved


def run_units(context: WorkerContext, units: Sequence[WorkUnit],
              workers: int,
              progress: Optional[Any] = None,
              executor: Optional[str] = None,
              pool: Optional[WorkerPool] = None) -> List[UnitResult]:
    """Run units with ``workers`` processes; merge in submission order.

    ``workers <= 1`` (or a single unit, or a call issued from inside a
    worker) executes serially in-process.  A context that fails to
    pickle, or a pool that cannot start or breaks mid-run, falls back
    to the serial executor — the units are pure functions of the
    context, so re-execution is safe — and records an
    ``exec.pool_fallback`` event.  Worker telemetry is adopted onto
    the live tracer before returning.

    ``executor`` selects the backend (:data:`EXECUTORS`; None defers
    to ``REPRO_EXECUTOR``, then ``process``).  The ``thread`` backend
    runs units on an in-process thread pool — no pickling, shared
    operator caches — and the ``serial`` backend forces the in-process
    loop.  ``pool`` routes the process path through a persistent
    :class:`~repro.exec.pool.WorkerPool` instead of a one-shot
    ``ProcessPoolExecutor``, keeping worker caches warm across calls.

    On the one-shot process path a shared-memory publication scope
    (:func:`repro.exec.shm.publication`) is held open around pickling
    and execution, so the heavy operator/network arrays ship as shm
    descriptors instead of per-worker copies; a persistent pool owns
    its own publication scope instead.

    ``progress`` (a :class:`~repro.obs.ProgressBoard`, or anything
    with its hook methods) receives ``begin``/``unit_running``/
    ``unit_done`` as units move — from executor threads on the pool
    path, in-line on the serial path.
    """
    units = list(units)
    if progress is not None:
        progress.begin(len(units))
    backend = resolve_executor(executor)
    # An explicit persistent pool fans out even at one worker — its
    # resident process holds the warm caches the caller paid for.
    fan_out = (workers > 1 or pool is not None) and len(units) > 1 \
        and not _workers.in_worker()
    if pool is None and backend == "thread" and fan_out:
        results = _run_threads(context, units,
                               min(workers, len(units)),
                               progress=progress)
        _adopt_telemetry(results)
        return results
    # An explicit persistent pool outranks the env-resolved backend —
    # the caller built real processes and expects them used.
    pooled = fan_out and (backend == "process" or pool is not None)
    # The persistent pool holds its own publication scope open for its
    # whole life (descriptor memoization is what keeps its context
    # digests stable), so only the one-shot pool opens one here.
    scope = _shm.publication() if pooled and pool is None \
        else nullcontext()
    with scope:
        payload: Optional[bytes] = None
        try:
            payload = pickle.dumps(context)
        except Exception as exc:  # physlint: disable=RPR201
            # Broad by necessity: pickle.dumps reports unpicklability
            # as whatever the object's __reduce__ raises (TypeError,
            # AttributeError, PicklingError, ...), so no narrower
            # tuple covers the probe.  An unpicklable context (a
            # policy or leakage model holding a closure, say) cannot
            # cross a process boundary, but the serial executor can
            # still run it directly — entry points that auto-engage on
            # REPRO_WORKERS must not start crashing merely because the
            # env var is set.
            _obs.event("exec.pool_fallback", error=type(exc).__name__)
        results: Optional[List[UnitResult]] = None
        if payload is not None and pooled:
            if pool is not None:
                try:
                    results = pool.run_payload(payload, units,
                                               progress=progress)
                except WorkerPoolError as exc:
                    _obs.event("exec.pool_fallback",
                               error=type(exc).__name__)
                    results = None
            else:
                try:
                    results = _run_pool(payload, units,
                                        min(workers, len(units)),
                                        progress=progress)
                except (OSError, BrokenProcessPool,
                        pickle.PicklingError) as exc:
                    _obs.event("exec.pool_fallback",
                               error=type(exc).__name__)
                    results = None
        if results is None:
            # Round-trip through the payload when possible so serial
            # and pool runs exercise the identical serialization path.
            serial_context = context if payload is None \
                else pickle.loads(payload)
            results = _run_serial(serial_context, units,
                                  progress=progress)
    _adopt_telemetry(results)
    return results


def adopt_unit_telemetry(name: str, index: int, pid: Optional[int],
                         wall_seconds: float,
                         spans: Optional[Sequence[Dict[str, Any]]],
                         metrics_snapshot: Optional[dict]) -> None:
    """Graft one unit's exported telemetry onto the live trace.

    Creates a ``unit`` span on the live tracer whose extent is the
    unit's worker wall time (ending now), adopts the worker's exported
    span records under it with their clocks shifted to the unit span's
    origin, and folds the worker's metrics snapshot into the live
    registry.  No-op while telemetry is disabled.

    This is the single adoption seam shared by the end-of-run merge
    (:func:`run_units`) and the supervisor's streamed telemetry
    packets — both paths produce the identical merged tree shape.
    """
    if not _obs.STATE.enabled:
        return
    tracer = _obs.STATE.tracer
    metrics = _obs.STATE.metrics
    unit_span = tracer.start_span("unit", name, index=index,
                                  worker_pid=pid)
    tracer.end_span(unit_span)
    if unit_span.end_s is not None:
        unit_span.start_s = max(
            unit_span.end_s - wall_seconds, 0.0)
    if spans:
        tracer.adopt_records(spans, parent=unit_span,
                             time_offset=unit_span.start_s)
    if metrics_snapshot:
        metrics.merge_snapshot(metrics_snapshot)


def _adopt_telemetry(results: Sequence[UnitResult]) -> None:
    """Re-parent worker spans/metrics under the coordinating trace."""
    if not _obs.STATE.enabled:
        return
    for result in results:
        adopt_unit_telemetry(result.name, result.index,
                             result.stats.get("pid"),
                             result.wall_seconds, result.spans,
                             result.metrics)


def worker_statistics(results: Sequence[UnitResult]) -> Dict[str, Any]:
    """Aggregate per-unit stats into per-worker cache-locality totals.

    Returns ``{"per_worker": [...], "units": [...]}`` where each
    per-worker entry sums the operator counters of every unit that
    process executed — the numbers that show each worker's factor
    cache warming once and then serving its whole share of the job.
    """
    per_worker: Dict[Any, Dict[str, Any]] = {}
    unit_rows: List[Dict[str, Any]] = []
    for result in results:
        pid = result.stats.get("pid")
        row = {
            "unit": result.name,
            "pid": pid,
            "wall_seconds": result.wall_seconds,
            "solves": int(result.stats.get("solves") or 0),
            "factorizations": int(
                result.stats.get("factorizations") or 0),
            "factor_cache_hits": int(
                result.stats.get("factor_cache_hits") or 0),
            "adjoint_solves": int(
                result.stats.get("adjoint_solves") or 0),
        }
        unit_rows.append(row)
        entry = per_worker.setdefault(pid, {
            "pid": pid, "units": 0, "wall_seconds": 0.0,
            "solves": 0, "factorizations": 0,
            "factor_cache_hits": 0, "adjoint_solves": 0})
        entry["units"] += 1
        entry["wall_seconds"] += result.wall_seconds
        for key in ("solves", "factorizations", "factor_cache_hits",
                    "adjoint_solves"):
            entry[key] += row[key]
    ordered = sorted(per_worker.values(),
                     key=lambda e: (e["pid"] is None, e["pid"]))
    return {"per_worker": ordered, "units": unit_rows}


# -- campaign decomposition -----------------------------------------------


@dataclass
class CampaignMerge:
    """The deterministic merge of a unit-decomposed campaign.

    Attributes:
        comparisons: Successful per-benchmark comparisons, in
            submission (= profile) order.
        failures: Structured failure reports, in the same order the
            serial loop would have appended them.
        errors: ``(benchmark, stage, error_type, message)`` for every
            unit whose pipeline failed terminally — the non-isolated
            path raises from the first of these.
        fired: Total fault fires per kind value (chaos runs; includes
            process-level kinds under supervision).
        unhandled: Non-library exception lines from workers (the chaos
            contract requires this to stay empty).
        crashed: ``(unit_label, attempts, message)`` for every
            unhandled line, so a :class:`~repro.errors.WorkerCrashError`
            can name the benchmark that died and how many attempts it
            consumed.
        worker_stats: :func:`worker_statistics` of the run.
        quarantined: Supervised runs only — units that exhausted their
            retry budget (:class:`~repro.exec.QuarantinedUnit`).
        retries: Supervised runs only — attempts beyond the first.
        circuit_opened: Supervised runs only — True when the run
            degraded to the serial executor.
    """

    comparisons: List[Any] = field(default_factory=list)
    failures: List[FailureReport] = field(default_factory=list)
    errors: List[Tuple[str, str, str, str]] = field(
        default_factory=list)
    fired: Dict[str, int] = field(default_factory=dict)
    unhandled: List[str] = field(default_factory=list)
    crashed: List[Tuple[str, int, str]] = field(default_factory=list)
    worker_stats: Dict[str, Any] = field(default_factory=dict)
    quarantined: List[Any] = field(default_factory=list)
    retries: int = 0
    circuit_opened: bool = False


def run_campaign_units(
    profiles: Mapping[str, Any],
    tec_template: CoolingProblem,
    baseline_template: CoolingProblem,
    method: str,
    include_tec_only: bool,
    resilient: bool,
    policy: Optional[ResiliencePolicy],
    fault_plan: Optional[FaultPlan],
    workers: int,
    supervision: Optional[Any] = None,
    journal: Optional[Any] = None,
    completed: Optional[Mapping[int, UnitResult]] = None,
    jac: str = "analytic",
    progress: Optional[Any] = None,
    executor: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
) -> CampaignMerge:
    """Decompose a campaign into stage (or benchmark) units and merge.

    The default decomposition is one unit per *pipeline stage* per
    benchmark (:data:`repro.analysis.campaign.CAMPAIGN_STAGES`) —
    roughly six times the grain of whole-benchmark units, which is
    what lets the deque scheduler keep every worker busy when one
    benchmark's OFTEC stage dominates the wall clock.  Benchmarks stay
    whole units in two cases: under a ``fault_plan`` (the chaos
    injector's RNG advances across stages, so splitting would change
    the fault stream) and under supervision/journaling (journal
    fingerprints and retry bookkeeping are keyed to benchmark units).
    The problem templates travel once per worker on the context either
    way.  ``supervision`` (a :class:`~repro.exec.SupervisionPolicy`),
    ``journal`` (a :class:`~repro.exec.JournalWriter`), or
    ``completed`` (journaled results keyed by unit index) route the
    units through the supervised executor — worker death becomes
    retries/quarantine instead of a raise, and completed units are
    skipped.  ``executor``/``pool`` select the backend exactly as in
    :func:`run_units`.  The caller owns the surrounding ``campaign``
    span and the :class:`CampaignResult` assembly — this function
    returns the raw merge.
    """
    context = WorkerContext(
        tec_template=tec_template,
        baseline_template=baseline_template,
        profiles=dict(profiles),
        method=method,
        jac=jac,
        include_tec_only=include_tec_only,
        resilient=resilient,
        policy=policy,
        fault_plan=fault_plan,
        telemetry=_obs.STATE.enabled)
    supervised = supervision is not None or journal is not None \
        or bool(completed)
    staged = fault_plan is None and not supervised
    stages = [stage for stage in CAMPAIGN_STAGES
              if include_tec_only or stage != "tec-only"]
    if staged:
        units = [
            WorkUnit(index=bench_index * len(stages) + stage_index,
                     kind="stage", name=f"{name}/{stage}",
                     params=(name, stage))
            for bench_index, name in enumerate(profiles)
            for stage_index, stage in enumerate(stages)]
    else:
        units = [WorkUnit(index=index, kind="benchmark", name=name)
                 for index, name in enumerate(profiles)]
    merge = CampaignMerge()
    if supervised:
        # Late import: supervisor imports this module at its top.
        from .supervisor import run_units_supervised
        outcome = run_units_supervised(
            context, units, workers, policy=supervision,
            journal=journal, completed=completed, monitor=progress)
        results = outcome.completed
        merge.quarantined = list(outcome.quarantined)
        merge.retries = outcome.retries
        merge.circuit_opened = outcome.circuit_opened
        for kind, count in outcome.process_fired.items():
            merge.fired[kind] = merge.fired.get(kind, 0) + count
    else:
        results = run_units(context, units, workers,
                            progress=progress, executor=executor,
                            pool=pool)
    merge.worker_stats = worker_statistics(results)
    if pool is not None:
        merge.worker_stats["pool"] = pool.stats()
    if supervised:
        merge.worker_stats["supervision"] = {
            "retries": merge.retries,
            "replacements": outcome.replacements,
            "quarantined": len(merge.quarantined),
            "circuit_opened": merge.circuit_opened,
            "process_faults_fired": dict(
                sorted(outcome.process_fired.items())),
        }
    if staged:
        _merge_stage_results(merge, results, list(profiles), stages)
        return merge
    for result in results:
        merge.failures.extend(result.failures)
        merge.unhandled.extend(result.unhandled)
        for line in result.unhandled:
            merge.crashed.append((result.name, 1, line))
        for kind, count in result.fired.items():
            merge.fired[kind] = merge.fired.get(kind, 0) + count
        if result.error is not None:
            stage, error_type, message = result.error
            merge.errors.append(
                (result.name, stage, error_type, message))
        elif result.value is not None:
            merge.comparisons.append(result.value)
    return merge


def _merge_stage_results(merge: CampaignMerge,
                         results: Sequence[UnitResult],
                         benchmarks: Sequence[str],
                         stages: Sequence[str]) -> None:
    """Reassemble stage units into per-benchmark comparisons.

    Walks each benchmark's stages in serial pipeline order and *stops
    at the first stage that errored or crashed*, dropping the results
    of later stages outright — in the serial loop those stages never
    ran, so admitting their failures or values would diverge from the
    serial merge.  A benchmark whose stages all completed yields a
    :class:`~repro.analysis.campaign.BenchmarkComparison`
    indistinguishable from the inline pipeline's.
    """
    by_index = {result.index: result for result in results}
    for bench_index, name in enumerate(benchmarks):
        values: Dict[str, Any] = {}
        broken = False
        for stage_index, stage in enumerate(stages):
            result = by_index.get(
                bench_index * len(stages) + stage_index)
            if result is None:  # lost unit: treat as terminal
                broken = True
                break
            merge.failures.extend(result.failures)
            for kind, count in result.fired.items():
                merge.fired[kind] = merge.fired.get(kind, 0) + count
            if result.unhandled:
                merge.unhandled.extend(result.unhandled)
                for line in result.unhandled:
                    merge.crashed.append((result.name, 1, line))
                broken = True
                break
            if result.error is not None:
                stage_name, error_type, message = result.error
                merge.errors.append(
                    (name, stage_name, error_type, message))
                broken = True
                break
            values[stage] = result.value
        if broken:
            continue
        merge.comparisons.append(BenchmarkComparison(
            name=name,
            oftec_opt1=values["oftec-opt1"],
            oftec_opt2=values["oftec-opt2"],
            variable_opt1=values["variable-opt1"],
            variable_opt2=values["variable-opt2"],
            fixed=values["fixed-omega"],
            tec_only=values.get("tec-only")))


# -- point/field fan-out --------------------------------------------------


def chunk_sizes(point_count: int, chunk: int) -> List[int]:
    """Balanced per-unit sizes for slicing ``point_count`` points.

    Same unit count as fixed-size ``chunk`` slicing
    (``ceil(count / chunk)``), but the remainder is spread across
    units instead of stranded in one runt: 17 points at chunk 8 become
    ``[6, 6, 5]``, not ``[8, 8, 1]`` — the naive tail chunk turns into
    idle workers at the end of every fan-out.  Exact multiples are
    untouched, so chunk-aligned layouts (sweep rows) keep their exact
    sizes.
    """
    if point_count <= 0:
        return []
    if chunk < 1:
        raise ConfigurationError(
            f"chunk size must be >= 1, got {chunk}")
    unit_count = math.ceil(point_count / chunk)
    base, extra = divmod(point_count, unit_count)
    return [base + 1] * extra + [base] * (unit_count - extra)


def _chunk_units(points: Sequence[Tuple[float, float]], kind: str,
                 chunk: int) -> List[WorkUnit]:
    units = []
    start = 0
    for index, size in enumerate(chunk_sizes(len(points), chunk)):
        units.append(WorkUnit(
            index=index, kind=kind, name=f"chunk-{index}",
            params=tuple(points[start:start + size])))
        start += size
    return units


def default_chunk(point_count: int, workers: int) -> int:
    """Chunk size targeting ~4 units per worker.

    Enough grain for the scheduler to rebalance when units run at
    different speeds, small enough dispatch overhead stays amortized.
    Derived from a unit-count target (``4 * workers``, capped at the
    point count) rather than naive division, so awkward counts do not
    produce a pathological runt unit — and
    :func:`chunk_sizes` balances whatever remainder is left.
    """
    if point_count <= 0:
        return 1
    target_units = min(point_count, 4 * max(workers, 1))
    return max(1, math.ceil(point_count / target_units))


def evaluate_points(
    problem: CoolingProblem,
    points: Sequence[Tuple[float, float]],
    workers: int,
    chunk: Optional[int] = None,
    progress: Optional[Any] = None,
    executor: Optional[str] = None,
) -> List[Any]:
    """Evaluate ``(omega, I)`` points by fanning chunks across workers.

    Pure fan-out: each chunk is evaluated by a fresh worker-side
    evaluator, so the returned evaluations are independent of chunk
    boundaries and worker count.  Only valid for problems where the
    evaluator's batched path applies (leakage-free, base-class solve);
    callers gate on :meth:`Evaluator._batchable`-equivalent conditions.
    """
    points = [(float(omega), float(current))
              for omega, current in points]
    if not points:
        return []
    if chunk is None:
        chunk = default_chunk(len(points), workers)
    context = WorkerContext(point_problem=problem,
                            telemetry=_obs.STATE.enabled)
    units = _chunk_units(points, "points", chunk)
    results = run_units(context, units, workers, progress=progress,
                        executor=executor)
    evaluations: List[Any] = []
    for result in results:
        if result.error is not None:
            stage, error_type, message = result.error
            raise SolverError(
                f"parallel evaluation failed in {stage} unit "
                f"{result.name}: {error_type}: {message}")
        evaluations.extend(result.value)
    return evaluations


def solve_fields(
    model: Any,
    points: Sequence[Tuple[float, float]],
    dynamic_cell_power: Any,
    leakage: Any,
    workers: int,
    chunk: Optional[int] = None,
    progress: Optional[Any] = None,
    executor: Optional[str] = None,
) -> List[Any]:
    """Temperature fields at many points, fanned across workers.

    The parallel backend of
    :func:`repro.analysis.temperature_fields`; entries are per-cell
    chip temperatures in K, or None where the point ran away, in
    input order.

    Args:
        model: Package thermal model to solve against.
        points: ``(omega, current)`` pairs — fan speed in rad/s, TEC
            current in A.
        dynamic_cell_power: Per-cell dynamic power, W.
        leakage: Optional cell leakage model (None for leakage-free).
        workers: Worker process count (>= 1).
        chunk: Points per work unit (default :func:`default_chunk`).
    """
    points = [(float(omega), float(current))
              for omega, current in points]
    if not points:
        return []
    if chunk is None:
        chunk = default_chunk(len(points), workers)
    # The power map is a pure read-only constant: wrapping it lets an
    # open shm plane ship one copy for all workers (it unwraps to a
    # plain ndarray on the other side either way).
    context = WorkerContext(
        field_model=model,
        field_power=_shm.SharedArrayRef(dynamic_cell_power),
        field_leakage=leakage,
        telemetry=_obs.STATE.enabled)
    units = _chunk_units(points, "fields", chunk)
    results = run_units(context, units, workers, progress=progress,
                        executor=executor)
    fields: List[Any] = []
    for result in results:
        if result.error is not None:
            stage, error_type, message = result.error
            raise SolverError(
                f"parallel field solve failed in unit {result.name}: "
                f"{error_type}: {message}")
        fields.extend(result.value)
    return fields


def run_oftec_units(
    template: CoolingProblem,
    profiles: Mapping[str, Mapping[str, float]],
    method: str,
    workers: int,
    jac: str = "analytic",
    executor: Optional[str] = None,
) -> Dict[str, Any]:
    """OFTEC per representative profile (LUT precompute), in parallel.

    Returns label -> :class:`~repro.core.OFTECResult` in profile
    order.
    """
    context = WorkerContext(
        oftec_template=template,
        oftec_profiles={label: dict(powers)
                        for label, powers in profiles.items()},
        method=method,
        jac=jac,
        telemetry=_obs.STATE.enabled)
    units = [WorkUnit(index=index, kind="oftec", name=label)
             for index, label in enumerate(profiles)]
    results = run_units(context, units, workers, executor=executor)
    table: Dict[str, Any] = {}
    for result in results:
        if result.error is not None:
            stage, error_type, message = result.error
            raise SolverError(
                f"parallel OFTEC failed for {result.name!r}: "
                f"{error_type}: {message}")
        table[result.name] = result.value
    return table


__all__ = [
    "CampaignMerge",
    "EXECUTORS",
    "EXECUTOR_ENV",
    "START_METHOD_ENV",
    "WORKERS_ENV",
    "adopt_unit_telemetry",
    "chunk_sizes",
    "default_chunk",
    "evaluate_points",
    "resolve_executor",
    "resolve_workers",
    "run_campaign_units",
    "run_oftec_units",
    "run_units",
    "solve_fields",
    "worker_statistics",
]
