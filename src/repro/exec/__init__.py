"""Parallel execution engine: scheduled work units over three backends.

Campaigns, chaos campaigns, ``(omega, I_TEC)`` sweeps, heat-map
batches, and LUT builds are all embarrassingly parallel; this package
decomposes them into picklable :class:`WorkUnit`\\ s (stage-grained for
campaigns) and runs them on the backend ``executor`` selects: worker
processes (one-shot, or a persistent warm :class:`WorkerPool` with
cache-affinity dispatch), an in-process thread pool for the
GIL-releasing SuperLU solve path, or the serial shim.  Heavy operator
and LUT arrays travel once over a shared-memory plane
(:mod:`repro.exec.shm`) instead of being pickled per worker.  Every
backend merges deterministically (submission order) — parallel
campaigns produce bit-identical JSON to serial ones — and per-unit
telemetry re-parents worker spans under the coordinating trace.

See docs/PARALLELISM.md for executor selection, the worker model, the
determinism contract, and the cache-locality story.
"""

from .journal import (
    JOURNAL_VERSION,
    JournalRecovery,
    JournalWriter,
    read_journal,
    unit_fingerprint,
)
from .pool import WorkerPool, WorkerPoolError
from .scheduler import (
    CampaignMerge,
    EXECUTORS,
    EXECUTOR_ENV,
    START_METHOD_ENV,
    WORKERS_ENV,
    chunk_sizes,
    default_chunk,
    evaluate_points,
    resolve_executor,
    resolve_workers,
    run_campaign_units,
    run_oftec_units,
    run_units,
    solve_fields,
    worker_statistics,
)
from .shm import (
    SHM_ENV,
    SharedArrayRef,
    live_segment_files,
    publication,
    shm_enabled,
)
from .supervisor import (
    QuarantinedUnit,
    SupervisedOutcome,
    SupervisionPolicy,
    run_units_supervised,
)
from .units import UNIT_KINDS, UnitResult, WorkUnit, WorkerContext
from .workers import initialize, run_unit

__all__ = [
    "CampaignMerge",
    "EXECUTORS",
    "EXECUTOR_ENV",
    "JOURNAL_VERSION",
    "JournalRecovery",
    "JournalWriter",
    "QuarantinedUnit",
    "SHM_ENV",
    "START_METHOD_ENV",
    "SharedArrayRef",
    "SupervisedOutcome",
    "SupervisionPolicy",
    "UNIT_KINDS",
    "UnitResult",
    "WORKERS_ENV",
    "WorkUnit",
    "WorkerContext",
    "WorkerPool",
    "WorkerPoolError",
    "chunk_sizes",
    "default_chunk",
    "evaluate_points",
    "initialize",
    "live_segment_files",
    "publication",
    "read_journal",
    "resolve_executor",
    "resolve_workers",
    "run_campaign_units",
    "run_oftec_units",
    "run_unit",
    "run_units",
    "solve_fields",
    "shm_enabled",
    "unit_fingerprint",
    "worker_statistics",
]
