"""Parallel execution engine: process-pool scheduling of work units.

Campaigns, chaos campaigns, ``(omega, I_TEC)`` sweeps, heat-map
batches, and LUT builds are all embarrassingly parallel; this package
decomposes them into picklable :class:`WorkUnit`\\ s and runs them on a
``ProcessPoolExecutor`` with worker-local evaluator/operator caches, a
serial in-process fallback, deterministic (submission-order) merging —
parallel campaigns produce bit-identical JSON to serial ones — and
per-unit telemetry capture that re-parents worker spans under the
coordinating trace.

See docs/PARALLELISM.md for the worker model, the determinism
contract, and the cache-locality story.
"""

from .journal import (
    JOURNAL_VERSION,
    JournalRecovery,
    JournalWriter,
    read_journal,
    unit_fingerprint,
)
from .scheduler import (
    CampaignMerge,
    START_METHOD_ENV,
    WORKERS_ENV,
    default_chunk,
    evaluate_points,
    resolve_workers,
    run_campaign_units,
    run_oftec_units,
    run_units,
    solve_fields,
    worker_statistics,
)
from .supervisor import (
    QuarantinedUnit,
    SupervisedOutcome,
    SupervisionPolicy,
    run_units_supervised,
)
from .units import UNIT_KINDS, UnitResult, WorkUnit, WorkerContext
from .workers import initialize, run_unit

__all__ = [
    "CampaignMerge",
    "JOURNAL_VERSION",
    "JournalRecovery",
    "JournalWriter",
    "QuarantinedUnit",
    "START_METHOD_ENV",
    "SupervisedOutcome",
    "SupervisionPolicy",
    "UNIT_KINDS",
    "UnitResult",
    "WORKERS_ENV",
    "WorkUnit",
    "WorkerContext",
    "default_chunk",
    "evaluate_points",
    "initialize",
    "read_journal",
    "resolve_workers",
    "run_campaign_units",
    "run_oftec_units",
    "run_unit",
    "run_units",
    "solve_fields",
    "unit_fingerprint",
    "worker_statistics",
]
