"""Work units: the picklable currency of the parallel scheduler.

A :class:`WorkUnit` names one independent slice of a larger job — one
campaign benchmark, one chunk of sweep points, one heat-map batch, one
LUT row — small enough to pickle cheaply (the heavy problem templates
travel once per worker inside the :class:`WorkerContext`, not per
unit).  A :class:`UnitResult` carries everything the coordinator needs
to merge deterministically: the payload value, structured failures,
fault fires, per-unit telemetry exports, and worker identity/cache
statistics.

Both ends of the pipe are plain data on purpose: no live evaluators,
no SuperLU factors, no open spans ever cross the process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core import CoolingProblem, FailureReport, ResiliencePolicy
from ..errors import ConfigurationError
from ..faults.plan import FaultPlan

#: The unit kinds the worker shim knows how to execute.  ``stage`` is
#: the finer campaign decomposition: one pipeline stage of one
#: benchmark (``params = (benchmark, stage)``), lifting unit counts
#: from 8 to ~48 so the stealing scheduler has enough grain to balance.
UNIT_KINDS = ("benchmark", "stage", "points", "fields", "oftec")


@dataclass(frozen=True)
class WorkUnit:
    """One independent slice of a decomposed job.

    Attributes:
        index: Submission position; the merge key (results are always
            combined in ascending index order, which is what makes
            parallel output bit-identical to serial).
        kind: One of :data:`UNIT_KINDS`.
        name: Unit label — the benchmark/profile name for
            ``benchmark``/``oftec`` units, a chunk label otherwise.
        params: Kind-specific payload (e.g. the ``(omega, I)`` tuples
            of a ``points`` or ``fields`` chunk).  Must stay picklable
            and small; bulk shared inputs belong on the context.
    """

    index: int
    kind: str
    name: str
    params: Tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in UNIT_KINDS:
            raise ConfigurationError(
                f"unknown work-unit kind {self.kind!r}; expected one "
                f"of {UNIT_KINDS}")
        if self.index < 0:
            raise ConfigurationError(
                f"unit index must be >= 0, got {self.index}")


@dataclass
class UnitResult:
    """Everything one executed unit sends back to the coordinator.

    Attributes:
        index: Echo of :attr:`WorkUnit.index` (the merge key).
        name: Echo of :attr:`WorkUnit.name`.
        value: The unit's payload — a
            :class:`~repro.analysis.campaign.BenchmarkComparison`, a
            list of evaluations, a list of temperature fields, or an
            :class:`~repro.core.OFTECResult` — or None when the unit
            failed.
        failures: Structured post-mortems, in occurrence order
            (identical to what the serial path would have appended).
        error: ``(stage, error_type, message)`` when a pipeline stage
            failed terminally — the picklable stand-in for the original
            exception, which may not survive the trip home.
        unhandled: ``"Type: message"`` lines for non-library exceptions
            (the chaos contract's escape hatch).
        fired: Fault fires per kind value, for chaos merges.
        stats: Worker identity and cache-locality counters: ``pid``
            plus the unit's operator/evaluator deltas.
        spans: Exported span records
            (:func:`repro.obs.span_to_dict` dictionaries) when the
            coordinator asked for telemetry, else None.
        metrics: The worker session's metrics snapshot, else None.
        wall_seconds: Unit wall-clock time in the worker.
    """

    index: int
    name: str
    value: Any = None
    failures: List[FailureReport] = field(default_factory=list)
    error: Optional[Tuple[str, str, str]] = None
    unhandled: List[str] = field(default_factory=list)
    fired: Dict[str, int] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)
    spans: Optional[List[dict]] = None
    metrics: Optional[dict] = None
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the unit produced its payload."""
        return self.error is None and not self.unhandled


@dataclass
class WorkerContext:
    """The shared inputs every worker receives exactly once.

    Pickled by the coordinator and unpickled in each worker's
    initializer, so per-unit submissions stay tiny and each worker's
    lazily built evaluators/operators (the splu factor cache, the LRU
    evaluation cache) stay hot across all units it executes.

    Only the fields relevant to the job's unit kinds need to be set;
    the rest default to None.
    """

    # -- benchmark units ----------------------------------------------
    tec_template: Optional[CoolingProblem] = None
    baseline_template: Optional[CoolingProblem] = None
    profiles: Optional[Dict[str, Any]] = None
    method: str = "slsqp"
    #: Gradient mode threaded into every solver call a unit makes
    #: (see :data:`repro.core.JAC_MODES`).
    jac: str = "analytic"
    include_tec_only: bool = False
    resilient: bool = False
    policy: Optional[ResiliencePolicy] = None
    #: Chaos root plan; each benchmark unit derives its own sub-plan
    #: via :meth:`~repro.faults.FaultPlan.derive`, so fault streams are
    #: independent of scheduling order and worker count.
    fault_plan: Optional[FaultPlan] = None
    # -- points units -------------------------------------------------
    point_problem: Optional[CoolingProblem] = None
    # -- fields units -------------------------------------------------
    field_model: Any = None
    field_power: Any = None
    field_leakage: Any = None
    # -- oftec units --------------------------------------------------
    oftec_template: Optional[CoolingProblem] = None
    oftec_profiles: Optional[Dict[str, Any]] = None
    # -- telemetry ----------------------------------------------------
    #: When True, each unit runs under its own worker-side
    #: telemetry session and ships spans + a metrics snapshot home.
    telemetry: bool = False


__all__ = [
    "UNIT_KINDS",
    "UnitResult",
    "WorkUnit",
    "WorkerContext",
]
