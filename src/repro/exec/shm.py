"""Shared-memory transport for cold operator templates.

The process-pool engine ships a ``WorkerContext`` to every worker by
pickle.  The heavy constants inside it — the ``ThermalOperator``'s CSC
template (``data``/``indices``/``indptr``), the diagonal index map, the
network's static CSR, field power maps, LUT grids — are *identical* in
every worker, yet the classic transport serializes and copies them once
per process.  This module publishes those arrays **once** into
``multiprocessing.shared_memory`` segments; the pickled state then
carries only a tiny descriptor, and workers map the same physical pages
read-only.

Lifecycle
---------

Publication is scoped by the refcounted :func:`publication` context
manager.  The scheduler (and the supervised executor, whose replacement
workers can attach arbitrarily late) hold it open for the duration of a
run; when the last holder exits, every published segment is unlinked.
POSIX semantics keep already-attached mappings valid after unlink, so
workers never observe teardown — but a worker that has not yet attached
cannot do so once the name is gone, which is why the pool acknowledges
context installation before the coordinator releases the plane.

Unlink is guaranteed three ways: the context manager's ``finally``, an
``atexit`` hook for abnormal interpreter exits, and — for SIGKILLed
coordinators, where neither runs — the stdlib ``resource_tracker``
(created segments stay registered with it) plus a stale-segment sweep
that unlinks leftovers from dead pids at the next publication.

Fallback
--------

Publication failure (``/dev/shm`` full, shm unsupported) degrades to the
classic whole-array pickle: consumers treat a ``None`` descriptor as
"embed the arrays".  Both transports carry bit-identical values, so
canonical campaign digests do not depend on which one engaged.
"""

from __future__ import annotations

import atexit
import os
import re
import threading
import uuid
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SHM_ENV",
    "SegmentPlane",
    "SharedArrayRef",
    "active_plane",
    "attach_arrays",
    "live_segment_files",
    "publication",
    "shm_enabled",
]

SHM_ENV = "REPRO_SHM"
"""Set to ``0``/``off``/``false``/``no`` to disable shared-memory
transport and force the classic pickle path."""

_SEGMENT_PREFIX = "repro_shm"
_SHM_DIR = "/dev/shm"
_ALIGN = 64  # cache-line align every array inside a segment
_SEGMENT_RE = re.compile(r"^%s_(\d+)_[0-9a-f]+$" % _SEGMENT_PREFIX)

#: One-line spec of an array inside a segment: (key, dtype, shape, offset).
_ArraySpec = Tuple[str, str, Tuple[int, ...], int]


def shm_enabled() -> bool:
    """Whether shared-memory transport is enabled (``REPRO_SHM``)."""
    value = os.environ.get(SHM_ENV, "").strip().lower()
    return value not in ("0", "off", "false", "no")


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SegmentPlane:
    """One publication epoch: a registry of coordinator-owned segments.

    ``publish`` is memoized per owner object, so an operator template
    referenced by both the TEC and the baseline problem publishes its
    arrays exactly once no matter how many times it is pickled while the
    plane is open.  The plane keeps owners alive so ``id()`` keys cannot
    be recycled.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._memo: Dict[int, Optional[dict]] = {}
        self._keepalive: List[object] = []
        self._lock = threading.Lock()
        self._closed = False

    def publish(self, owner: object,
                arrays: Dict[str, np.ndarray]) -> Optional[dict]:
        """Publish ``arrays`` once for ``owner``; returns a descriptor.

        Returns ``None`` when the plane is closed or segment creation
        fails — the caller must fall back to embedding the arrays in the
        pickle stream.
        """
        with self._lock:
            if self._closed:
                return None
            key = id(owner)
            if key in self._memo:
                return self._memo[key]
            descriptor = self._publish_locked(arrays)
            self._memo[key] = descriptor
            if descriptor is not None:
                self._keepalive.append(owner)
            return descriptor

    def _publish_locked(self,
                        arrays: Dict[str, np.ndarray]) -> Optional[dict]:
        specs: List[_ArraySpec] = []
        prepared: List[Tuple[int, np.ndarray]] = []
        offset = 0
        for key, raw in arrays.items():
            arr = np.ascontiguousarray(raw)
            start = _align(offset)
            specs.append((key, arr.dtype.str, tuple(arr.shape), start))
            prepared.append((start, arr))
            offset = start + arr.nbytes
        size = max(offset, 1)
        name = "%s_%d_%s" % (_SEGMENT_PREFIX, os.getpid(),
                             uuid.uuid4().hex[:8])
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=size)
        except (OSError, ValueError):
            return None
        with _ATTACH_LOCK:
            _CREATED.add(segment.name)
        for start, arr in prepared:
            view = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=segment.buf, offset=start)
            view[...] = arr
            del view  # release the buffer export before any close()
        self._segments.append(segment)
        return {"segment": segment.name, "size": size, "arrays": specs}

    def segment_names(self) -> List[str]:
        """Names of every segment this plane has created."""
        with self._lock:
            return [seg.name for seg in self._segments]

    def close(self) -> None:
        """Unlink and unmap every segment; the plane rejects new work."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, []
            self._memo.clear()
            self._keepalive.clear()
        for segment in segments:
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):
                pass
            try:
                segment.close()
            except (OSError, BufferError):
                pass


_STATE_LOCK = threading.Lock()
# Coordinator-side publication state.  Deliberately process-global: the
# plane must be reachable from __getstate__ hooks deep inside pickle, and
# its contents never need to merge across processes (workers only attach).
_PLANE: Optional[SegmentPlane] = None  # physlint: disable=RPR602
_PLANE_REFS = 0

# Process-lifetime attachment cache: segments stay mapped until process
# exit because unpickled operators hold numpy views into their buffers
# (closing would invalidate live arrays).  Worker-local by construction —
# nothing in it ever needs to merge back to the coordinator.
_ATTACH_LOCK = threading.Lock()
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}  # physlint: disable=RPR601

# Segment names this process (or, under fork, an ancestor sharing our
# resource tracker) created.  Attaching one of these must NOT unregister
# it from the tracker — the creator relies on that registration both for
# its own clean unlink and for SIGKILL cleanup.
_CREATED: set = set()  # physlint: disable=RPR601


def active_plane() -> Optional[SegmentPlane]:
    """The open publication plane, or ``None`` outside a publication."""
    with _STATE_LOCK:
        return _PLANE


@contextmanager
def publication() -> Iterator[Optional[SegmentPlane]]:
    """Refcounted publication scope.

    Nested/overlapping holders share one plane; the last exit unlinks
    every segment.  Yields ``None`` (and publishes nothing) when
    ``REPRO_SHM`` disables the transport.
    """
    global _PLANE, _PLANE_REFS
    if not shm_enabled():
        yield None
        return
    with _STATE_LOCK:
        if _PLANE is None:
            _sweep_stale_segments()
            _PLANE = SegmentPlane()
        _PLANE_REFS += 1
        plane = _PLANE
    try:
        yield plane
    finally:
        with _STATE_LOCK:
            _PLANE_REFS -= 1
            last = _PLANE_REFS <= 0 and _PLANE is plane
            if last:
                _PLANE = None
                _PLANE_REFS = 0
        if last:
            plane.close()


def attach_arrays(descriptor: dict) -> Dict[str, np.ndarray]:
    """Map a descriptor's segment and return read-only array views.

    The attachment is cached for the life of the process and — unless
    this process created the segment — immediately unregistered from
    the stdlib resource tracker: on this Python *attaching* registers
    too, and a spawned worker exiting must not unlink a segment the
    coordinator still owns.  Creator-side registrations are left alone
    so a SIGKILLed coordinator's tracker still unlinks them.
    """
    name = descriptor["segment"]
    with _ATTACH_LOCK:
        segment = _ATTACHED.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name, create=False)
            if name not in _CREATED:
                try:
                    resource_tracker.unregister(
                        segment._name, "shared_memory")  # noqa: SLF001
                except (KeyError, ValueError):
                    pass
            _ATTACHED[name] = segment
    arrays: Dict[str, np.ndarray] = {}
    for key, dtype, shape, offset in descriptor["arrays"]:
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        arrays[key] = view
    return arrays


class SharedArrayRef:
    """Pickle-through wrapper: ships one ndarray via the active plane.

    Pickling while a plane is open publishes the array and emits a
    descriptor; unpickling returns the plain (read-only) ndarray, so the
    receiving side never sees the wrapper.  With no plane — or on
    publication failure — the array embeds in the stream as usual.
    """

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray) -> None:
        self.array = np.asarray(array)

    def __reduce__(self):
        plane = active_plane()
        if plane is not None:
            descriptor = plane.publish(self, {"array": self.array})
            if descriptor is not None:
                return (_attach_single, (descriptor, "array"))
        return (_as_is, (self.array,))


def _attach_single(descriptor: dict, key: str) -> np.ndarray:
    return attach_arrays(descriptor)[key]


def _as_is(array: np.ndarray) -> np.ndarray:
    return array


def live_segment_files(pids: Optional[Sequence[int]] = None) -> List[str]:
    """``/dev/shm`` entries of repro segments, optionally filtered by pid.

    Test/leak-check helper: after a run's publication scope closes, this
    must be empty for the coordinating pid.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    wanted = None if pids is None else {int(p) for p in pids}
    names = []
    for entry in entries:
        match = _SEGMENT_RE.match(entry)
        if match is None:
            continue
        if wanted is not None and int(match.group(1)) not in wanted:
            continue
        names.append(entry)
    return sorted(names)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # EPERM etc: exists, not ours
    return True


def _sweep_stale_segments() -> int:
    """Unlink repro segments left by dead coordinators; returns count.

    Normally the stdlib resource tracker survives a SIGKILLed
    coordinator and unlinks its registered segments, but the tracker
    itself can be killed; this sweep is the backstop, run when the next
    publication opens.
    """
    removed = 0
    own = os.getpid()
    for entry in live_segment_files():
        match = _SEGMENT_RE.match(entry)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == own or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
        except OSError:
            continue
        removed += 1
    return removed


def _atexit_cleanup() -> None:
    global _PLANE, _PLANE_REFS
    with _STATE_LOCK:
        plane, _PLANE, _PLANE_REFS = _PLANE, None, 0
    if plane is not None:
        plane.close()


atexit.register(_atexit_cleanup)
