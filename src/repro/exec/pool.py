"""Persistent warm worker pools: pay the cold start once, not per run.

The one-shot ``ProcessPoolExecutor`` behind :func:`repro.exec.run_units`
tears its workers down when the call returns, so every campaign, sweep,
or chaos run in the same coordinating process pays worker spawn plus
context unpickling plus cold evaluator/factor caches all over again.  A
:class:`WorkerPool` outlives individual ``run_units`` calls: its
processes stay resident, and — when the next run ships the *same*
context payload — each worker keeps its installed
:class:`~repro.exec.units.WorkerContext` object, which is exactly where
the warm state lives (the splu factor LRU on each template's thermal
operator, the evaluator caches on the models).  A second campaign on the
same templates then runs almost entirely out of worker-side caches.

Context identity is decided by a blake2b digest of the pickled payload.
To keep those bytes stable across runs, the pool holds one
:func:`repro.exec.shm.publication` scope open for its whole lifetime:
the shared-memory plane memoizes descriptors per template object, so
re-pickling the same templates yields byte-identical payloads (and the
heavy arrays still travel as tiny shm descriptors on the first install).

Scheduling is a central deque with one-unit-at-a-time dispatch: an idle
worker always takes the oldest pending unit, which is work stealing in
its simplest deterministic form — fast workers drain the queue while a
slow unit occupies one slot, and the submission-order merge is preserved
by slotting results by unit index.

Failure discipline: a dead or silent worker raises
:class:`WorkerPoolError` out of :meth:`WorkerPool.run_payload`; the
scheduler catches it, emits ``exec.pool_fallback``, and re-runs every
unit serially (units are pure functions of the context, so re-execution
is safe).  The pool marks itself broken and transparently respawns its
workers on the next run.  Liveness borrows the supervisor's heartbeat
design: each worker bumps a shared per-slot counter from a daemon
thread, and the coordinator watches for silence with its own monotonic
clock.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import queue as _queue
import threading
from collections import deque
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError, ReproError
from ..obs import runtime as _obs
from ..obs.clock import monotonic
from . import shm as _shm
from . import workers as _workers
from .units import UnitResult, WorkUnit

__all__ = [
    "WorkerPool",
    "WorkerPoolError",
]

#: Seconds between pool-worker heartbeat bumps.
HEARTBEAT_INTERVAL_S = 0.25

#: Heartbeat silence tolerated from a live, busy worker before the pool
#: declares it hung (s).  Generous: a worker parked inside one long
#: SuperLU factorization still beats (the heartbeat thread needs only
#: the GIL slices the solver releases).
HEARTBEAT_TIMEOUT_S = 30.0

#: Seconds to wait for every worker to acknowledge a context install.
INSTALL_TIMEOUT_S = 120.0


class WorkerPoolError(ReproError):
    """A persistent pool broke mid-run (worker death, silence, or a
    lost protocol reply); the scheduler degrades to serial."""


def _pool_worker_main(slot: int, task_queue: Any, result_queue: Any,
                      heartbeats: Any, interval: float) -> None:
    """Entry point of one persistent pool worker.

    Serves ``("install", digest, payload)`` and ``("unit", unit)``
    messages until the ``None`` sentinel.  An install with a ``None``
    payload is a reuse: the worker keeps its current context object —
    and with it every warm cache — and just acknowledges the digest.
    """
    _obs.reset()
    from .supervisor import _heartbeat_loop
    silenced = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(slot, heartbeats, interval, silenced),
        daemon=True).start()
    digest: Optional[str] = None
    while True:
        item = task_queue.get()
        if item is None:
            silenced.set()
            return
        command = item[0]
        if command == "install":
            _, wanted, payload = item
            if payload is None and (digest != wanted
                                    or not _workers.in_worker()):
                # The coordinator thought we were warm but we are not
                # (respawned slot, first run): ask for the full payload.
                result_queue.put(("stale", slot, wanted))
                continue
            if payload is not None:
                try:
                    _workers.install_context(payload)
                except Exception as exc:  # physlint: disable=RPR201
                    # Anything __setstate__ raises (a vanished shm
                    # segment, a version skew) must become a protocol
                    # reply, not a dead worker.
                    result_queue.put((
                        "broken", slot,
                        f"{type(exc).__name__}: {exc}"))
                    digest = None
                    continue
            digest = wanted
            result_queue.put(("installed", slot, wanted))
        else:
            _, unit = item
            try:
                result = _workers.run_unit(unit)
            except Exception as exc:  # physlint: disable=RPR201
                # run_unit packages library errors itself; whatever
                # reaches here is a harness bug the merge must see.
                result = UnitResult(index=unit.index, name=unit.name)
                result.unhandled.append(f"{type(exc).__name__}: {exc}")
            result_queue.put(("result", slot, result))


class _PoolSlot:
    """Coordinator-side view of one resident worker."""

    __slots__ = ("slot", "process", "queue", "unit", "last_beat",
                 "beat_seen_at")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process: Any = None
        self.queue: Any = None
        self.unit: Optional[WorkUnit] = None
        self.last_beat = 0.0
        self.beat_seen_at = 0.0


class WorkerPool:
    """A reusable process pool whose workers keep their caches warm.

    Use as a context manager (or call :meth:`close` explicitly)::

        with WorkerPool(workers=2) as pool:
            first = run_campaign(profiles, tec, base, pool=pool)
            # Same templates => same payload digest => the second
            # campaign reuses each worker's installed context, so its
            # operator factor caches are already hot.
            second = run_campaign(profiles, tec, base, pool=pool)

    Args:
        workers: Resident worker-process count (>= 1).
        start_method: ``multiprocessing`` start method override; None
            defers to ``REPRO_START_METHOD``, then the platform
            default.
        heartbeat_timeout_seconds: Silence tolerated from a busy
            worker before the run is declared broken.
    """

    def __init__(self, workers: int,
                 start_method: Optional[str] = None,
                 heartbeat_timeout_seconds: float = HEARTBEAT_TIMEOUT_S,
                 ) -> None:
        if int(workers) < 1:
            raise ConfigurationError(
                f"pool worker count must be >= 1, got {workers}")
        self.workers = int(workers)
        self._start_method = start_method
        self._heartbeat_timeout = float(heartbeat_timeout_seconds)
        self._slots: List[_PoolSlot] = []
        self._result_queue: Any = None
        self._heartbeats: Any = None
        self._publication: Any = None
        self._digest: Optional[str] = None
        self._started = False
        self._broken = False
        self._closed = False
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "runs": 0,
            "context_installs": 0,
            "context_reuses": 0,
            "units_dispatched": 0,
            "affinity_hits": 0,
            "affinity_steals": 0,
            "broken_runs": 0,
            "worker_respawns": 0,
        }
        # unit name -> slot that last ran it.  Repeat runs of the same
        # units route each one back to the worker holding its factor
        # cache; an idle worker steals across affinity only when no
        # unit of its own (or unclaimed) remains pending.
        self._affinity: Dict[str, int] = {}
        # One publication scope for the pool's whole life, opened
        # before any payload is pickled against it: the shm plane
        # memoizes descriptors per template object, so identical
        # contexts re-pickle to identical bytes — the digest the
        # warm-reuse decision rests on.
        self._publication = _shm.publication()
        self._publication.__enter__()

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def _mp_context(self) -> Any:
        import multiprocessing
        method = self._start_method \
            or os.environ.get("REPRO_START_METHOD", "").strip() or None
        return multiprocessing.get_context(method)

    def _ensure_started(self) -> None:
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        if self._broken:
            self._teardown_workers()
            self._started = False
            self._broken = False
            self._digest = None
        if self._started:
            return
        ctx = self._mp_context()
        if self._publication is None:
            # One publication scope for the pool's whole life: the shm
            # plane memoizes per template object, so identical contexts
            # re-pickle to identical bytes — the digest the warm-reuse
            # decision rests on.
            self._publication = _shm.publication()
            self._publication.__enter__()
        self._heartbeats = ctx.Array("d", self.workers)
        self._result_queue = ctx.Queue()
        self._slots = [_PoolSlot(slot) for slot in range(self.workers)]
        for slot in self._slots:
            self._spawn(slot, ctx)
        self._started = True

    def _spawn(self, slot: _PoolSlot, ctx: Any) -> None:
        slot.queue = ctx.Queue()
        slot.unit = None
        slot.process = ctx.Process(
            target=_pool_worker_main,
            args=(slot.slot, slot.queue, self._result_queue,
                  self._heartbeats, HEARTBEAT_INTERVAL_S),
            daemon=True)
        slot.process.start()
        slot.last_beat = self._heartbeats[slot.slot]
        slot.beat_seen_at = monotonic()

    def _teardown_workers(self) -> None:
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            if process.is_alive() and slot.queue is not None:
                try:
                    slot.queue.put(None)
                except (OSError, ValueError):
                    pass
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(1.0)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
                if process.is_alive():
                    process.kill()
            if slot.queue is not None:
                slot.queue.cancel_join_thread()
            slot.process = None
        if self._result_queue is not None:
            self._result_queue.cancel_join_thread()
            self._result_queue = None
        self._slots = []

    def close(self) -> None:
        """Stop every worker and release the shared-memory plane."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_workers()
            self._started = False
            publication, self._publication = self._publication, None
        if publication is not None:
            publication.__exit__(None, None, None)

    # -- the run protocol ---------------------------------------------

    def run_payload(self, payload: bytes, units: Sequence[WorkUnit],
                    progress: Optional[Any] = None,
                    ) -> List[UnitResult]:
        """Run units against an installed context; results in unit order.

        Broadcasts the context (full payload on a digest change, a
        reuse token otherwise), waits for every worker's install
        acknowledgement, then feeds units one at a time from a central
        deque to whichever worker goes idle first.  Raises
        :class:`WorkerPoolError` on worker death, heartbeat silence, or
        a broken install — after marking the pool for respawn.
        """
        with self._lock:
            self._ensure_started()
            try:
                return self._run_locked(payload, list(units), progress)
            except WorkerPoolError:
                self._broken = True
                self._counters["broken_runs"] += 1
                raise

    def _run_locked(self, payload: bytes, units: List[WorkUnit],
                    progress: Optional[Any]) -> List[UnitResult]:
        digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
        fresh = digest != self._digest
        self._digest = None  # unknown until every worker acknowledges
        self._install(digest, payload if fresh else None)
        self._digest = digest
        self._counters["runs"] += 1
        if fresh:
            self._counters["context_installs"] += 1
        else:
            self._counters["context_reuses"] += 1
        position = {unit.index: pos for pos, unit in enumerate(units)}
        results: List[Optional[UnitResult]] = [None] * len(units)
        pending = deque(units)
        busy = 0
        while pending or busy:
            while pending:
                slot = self._idle_slot()
                if slot is None:
                    break
                unit = self._take_unit(pending, slot)
                slot.unit = unit
                slot.queue.put(("unit", unit))
                busy += 1
                self._counters["units_dispatched"] += 1
                if progress is not None:
                    progress.unit_running(unit.name)
            message = self._next_message(
                timeout=self._heartbeat_timeout)
            kind, slot_id, body = message
            slot = self._slots[slot_id]
            if kind == "result":
                slot.unit = None
                busy -= 1
                results[position[body.index]] = body
                if progress is not None:
                    progress.unit_done(
                        body.name, body.wall_seconds,
                        ok=body.error is None and not body.unhandled)
            elif kind == "broken":
                raise WorkerPoolError(
                    f"pool worker {slot_id} failed to install the "
                    f"context: {body}")
            # "installed"/"stale" replies here are stragglers from a
            # previous broken run; ignore them.
        return [result for result in results if result is not None]

    def _install(self, digest: str, payload: Optional[bytes]) -> None:
        """Broadcast the context and collect every worker's ack."""
        for slot in self._slots:
            slot.queue.put(("install", digest, payload))
        waiting = {slot.slot for slot in self._slots}
        deadline = monotonic() + INSTALL_TIMEOUT_S
        while waiting:
            remaining = deadline - monotonic()
            if remaining <= 0.0:
                raise WorkerPoolError(
                    f"workers {sorted(waiting)} never acknowledged "
                    "the context install")
            kind, slot_id, body = self._next_message(
                timeout=min(remaining, 1.0))
            if kind == "installed" and body == digest:
                waiting.discard(slot_id)
            elif kind == "stale" and body == digest:
                if payload is None:
                    raise WorkerPoolError(
                        f"pool worker {slot_id} lost its context "
                        "between runs")
                self._slots[slot_id].queue.put(
                    ("install", digest, payload))
            elif kind == "broken":
                raise WorkerPoolError(
                    f"pool worker {slot_id} failed to install the "
                    f"context: {body}")
            # Stale "result" messages from an aborted run are dropped.

    def _take_unit(self, pending: "deque[WorkUnit]",
                   slot: _PoolSlot) -> WorkUnit:
        """Pop the best pending unit for an idle slot.

        Preference order: oldest unit that last ran on this slot
        (its factors are already in this worker's caches), then the
        oldest never-assigned unit, then an outright steal of the
        oldest unit.  Stealing keeps the tail short when one worker
        falls behind; affinity keeps repeat runs warm.
        """
        own_index = None
        free_index = None
        for index, unit in enumerate(pending):
            owner = self._affinity.get(unit.name)
            if owner == slot.slot:
                own_index = index
                break
            if free_index is None and owner is None:
                free_index = index
        if own_index is not None:
            chosen = own_index
            self._counters["affinity_hits"] += 1
        elif free_index is not None:
            chosen = free_index
        else:
            chosen = 0
            self._counters["affinity_steals"] += 1
        unit = pending[chosen]
        del pending[chosen]
        self._affinity[unit.name] = slot.slot
        return unit

    def _idle_slot(self) -> Optional[_PoolSlot]:
        for slot in self._slots:
            if slot.unit is None:
                return slot
        return None

    def _next_message(self, timeout: float) -> Any:
        """One protocol message, with liveness checks while waiting."""
        waited = 0.0
        step = 0.1
        while True:
            try:
                return self._result_queue.get(
                    timeout=min(step, max(timeout - waited, 0.01)))
            except _queue.Empty:
                waited += step
                self._check_liveness()
                if waited >= timeout:
                    raise WorkerPoolError(
                        "pool workers silent past the heartbeat "
                        f"timeout ({self._heartbeat_timeout:g} s)")

    def _check_liveness(self) -> None:
        now = monotonic()
        for slot in self._slots:
            process = slot.process
            if process is None or not process.is_alive():
                raise WorkerPoolError(
                    f"pool worker {slot.slot} died"
                    + (f" running unit {slot.unit.name!r}"
                       if slot.unit is not None else ""))
            beat = self._heartbeats[slot.slot]
            if beat != slot.last_beat:
                slot.last_beat = beat
                slot.beat_seen_at = now
            elif slot.unit is not None and \
                    now - slot.beat_seen_at > self._heartbeat_timeout:
                raise WorkerPoolError(
                    f"pool worker {slot.slot} heartbeats silent for "
                    f"{self._heartbeat_timeout:g} s on unit "
                    f"{slot.unit.name!r}")

    # -- introspection ------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Pool-lifetime counters (the ``pool_stats`` telemetry block).

        ``context_reuses`` counting up while ``context_installs`` stays
        at 1 is the warm-pool signature: workers kept their caches
        across runs.
        """
        with self._lock:
            stats: Dict[str, Any] = {"workers": self.workers}
            stats.update(self._counters)
            stats["warm"] = self._started and not self._broken \
                and self._digest is not None
            return stats
