"""Crash-consistent checkpoint journal for campaign work units.

A campaign that dies three hours in — coordinator OOM, machine reboot,
SIGKILL — currently forfeits every completed solve.  The journal is an
append-only JSONL write-ahead log of completed
:class:`~repro.exec.UnitResult`\\ s: each record is fsync'd before the
coordinator considers the unit durable, records are chained with
blake2b digests so silent damage is detected rather than replayed, and
a truncated final line (the expected shape of a crash mid-write) is
tolerated while any *earlier* damage raises a precise
:class:`~repro.errors.JournalCorruptionError`.

Resume (:func:`read_journal` + ``run_campaign(resume_from=...)``) skips
the journaled units; because every unit re-derives its fault/RNG
streams from its own label, the resumed half computes exactly what an
uninterrupted run would have, and the merged canonical JSON is
bit-identical.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import JournalCorruptionError, JournalError
from ..obs import runtime as _obs
from ..obs.clock import monotonic
from .units import UnitResult

#: Journal format version; bumped on any incompatible record change.
JOURNAL_VERSION = 1

#: Digest size (bytes) of the blake2b record chain.
_DIGEST_SIZE = 16

#: Seed of the digest chain — the header's ``prev`` value.
_CHAIN_ROOT = "journal-root"


def _record_digest(prev: str, body: str) -> str:
    """Chain digest of a record: blake2b over (prev digest + body)."""
    return hashlib.blake2b((prev + "\n" + body).encode("utf-8"),
                           digest_size=_DIGEST_SIZE).hexdigest()


def _encode_body(record: Dict[str, object]) -> str:
    """Canonical JSON of a record minus its ``digest`` field."""
    body = {key: value for key, value in record.items()
            if key != "digest"}
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def unit_fingerprint(names: Tuple[str, ...], job: str) -> str:
    """Identity of a campaign for journal/resume compatibility checks.

    A journal written by one campaign must not silently satisfy
    another: the fingerprint hashes the job kind plus the ordered unit
    labels, so resuming with a different benchmark set, method, or
    decomposition fails fast with a :class:`~repro.errors.JournalError`
    instead of merging foreign results.
    """
    payload = job + "\x00" + "\x00".join(names)
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=_DIGEST_SIZE).hexdigest()


@dataclass
class JournalRecovery:
    """What :func:`read_journal` salvaged from a journal file.

    Attributes:
        meta: The header's metadata mapping (includes ``fingerprint``).
        results: Completed units keyed by submission index.
        records: Number of unit records that verified.
        truncated: True when the final line was incomplete and was
            dropped (the normal signature of a crash mid-append).
        tail_digest: Chain digest of the last verified record, for
            appending further records to the same chain.
    """

    meta: Dict[str, object] = field(default_factory=dict)
    results: Dict[int, UnitResult] = field(default_factory=dict)
    records: int = 0
    truncated: bool = False
    tail_digest: str = _CHAIN_ROOT


def read_journal(path: str) -> JournalRecovery:
    """Verify and load a campaign journal.

    Walks the record chain front to back re-deriving every digest.  A
    record that fails to parse or verify is tolerated only when it is
    the *final* line of the file (truncated tail); anywhere else it
    raises :class:`~repro.errors.JournalCorruptionError` naming the
    record.  Two records for the same unit index must carry identical
    payloads (idempotent replay of a crashed append) — conflicting
    duplicates are corruption, never a silent last-writer-wins.
    """
    if not os.path.exists(path):
        raise JournalError(f"journal not found: {path}")
    with open(path, "rb") as handle:
        raw_lines = handle.read().split(b"\n")
    if raw_lines and raw_lines[-1] == b"":
        raw_lines.pop()

    recovery = JournalRecovery()
    prev = _CHAIN_ROOT
    for line_index, raw in enumerate(raw_lines):
        is_last = line_index == len(raw_lines) - 1
        try:
            record = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            if is_last:
                recovery.truncated = True
                break
            raise JournalCorruptionError(
                f"journal record {line_index} is unparseable "
                f"mid-file ({exc}); refusing to skip records",
                record_index=line_index) from exc
        if not isinstance(record, dict):
            if is_last:
                recovery.truncated = True
                break
            raise JournalCorruptionError(
                f"journal record {line_index} is not an object; "
                "refusing to skip records",
                record_index=line_index)

        digest = record.get("digest")
        expected = _record_digest(prev, _encode_body(record))
        if digest != expected:
            if is_last:
                # A crash can truncate the digest field itself; the
                # record was never acknowledged, so drop it.
                recovery.truncated = True
                break
            raise JournalCorruptionError(
                f"journal record {line_index} fails its chain digest "
                f"(file damaged or edited)", record_index=line_index)

        kind = record.get("kind")
        if line_index == 0:
            if kind != "header":
                raise JournalCorruptionError(
                    "journal does not start with a header record",
                    record_index=0)
            if record.get("version") != JOURNAL_VERSION:
                raise JournalError(
                    f"unsupported journal version "
                    f"{record.get('version')!r} "
                    f"(expected {JOURNAL_VERSION})")
            recovery.meta = dict(record.get("meta", {}))
        elif kind == "unit":
            index = record["index"]
            payload = base64.b64decode(record["payload"])
            result = pickle.loads(payload)
            previous = recovery.results.get(index)
            if previous is not None:
                if pickle.dumps(previous) != payload:
                    raise JournalCorruptionError(
                        f"journal record {line_index} duplicates unit "
                        f"{index} ({record.get('unit')!r}) with a "
                        f"conflicting payload",
                        record_index=line_index)
                # Identical replay of an acknowledged append: keep one.
            else:
                recovery.results[index] = result
                recovery.records += 1
        else:
            raise JournalCorruptionError(
                f"journal record {line_index} has unknown kind "
                f"{kind!r}", record_index=line_index)
        prev = digest
        recovery.tail_digest = digest
    return recovery


class JournalWriter:
    """Append-only, fsync'd writer of the campaign unit journal.

    Every :meth:`append` serializes the :class:`UnitResult`, chains it
    to the previous record, writes one JSONL line, flushes, and
    fsyncs — only then is the unit considered durable.  Construction
    with ``resume=False`` truncates any existing file and writes a
    fresh header; ``resume=True`` verifies the existing chain via
    :func:`read_journal` and continues appending to its tail.
    """

    def __init__(self, path: str, meta: Optional[Mapping[str, object]]
                 = None, resume: bool = False) -> None:
        self.path = path
        self.completed: Dict[int, UnitResult] = {}
        if resume:
            recovery = read_journal(path)
            expected = (meta or {}).get("fingerprint")
            found = recovery.meta.get("fingerprint")
            if expected is not None and found != expected:
                raise JournalError(
                    f"journal {path} belongs to a different campaign "
                    f"(fingerprint {found!r}, expected {expected!r})")
            self.completed = dict(recovery.results)
            self._prev = recovery.tail_digest
            if recovery.truncated:
                # Drop the unacknowledged tail so appends extend a
                # clean chain.
                self._truncate_to_verified(recovery)
            self._handle = open(path, "ab")
        else:
            self._prev = _CHAIN_ROOT
            self._handle = open(path, "wb")
            header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "meta": dict(meta or {}),
            }
            self._write(header)

    def _truncate_to_verified(self, recovery: JournalRecovery) -> None:
        """Rewrite the file keeping only the verified chain prefix."""
        with open(self.path, "rb") as handle:
            lines = handle.read().split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        verified = []
        prev = _CHAIN_ROOT
        for raw in lines:
            try:
                record = json.loads(raw.decode("utf-8"))
                digest = record.get("digest")
            except (ValueError, UnicodeDecodeError):
                break
            if digest != _record_digest(prev, _encode_body(record)):
                break
            verified.append(raw)
            prev = digest
        with open(self.path, "wb") as handle:
            for raw in verified:
                handle.write(raw + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _write(self, record: Dict[str, object]) -> None:
        """Chain, append, flush, and fsync one record."""
        body = _encode_body(record)
        record = dict(record)
        record["digest"] = _record_digest(self._prev, body)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":"))
        with _obs.span("exec.journal", str(record.get("kind"))):
            self._handle.write(line.encode("utf-8") + b"\n")
            self._handle.flush()
            if _obs.STATE.enabled:
                metrics = _obs.get_metrics()
                started = monotonic()
                os.fsync(self._handle.fileno())
                metrics.histogram("journal.fsync_seconds").observe(
                    monotonic() - started)
                metrics.counter("journal.records").inc()
            else:
                os.fsync(self._handle.fileno())
        self._prev = record["digest"]

    def append(self, result: UnitResult) -> None:
        """Durably record one completed unit (idempotent per index)."""
        if result.index in self.completed:
            return
        payload = pickle.dumps(result)
        self._write({
            "kind": "unit",
            "index": result.index,
            "unit": result.name,
            "payload": base64.b64encode(payload).decode("ascii"),
        })
        self.completed[result.index] = result

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "JOURNAL_VERSION",
    "JournalRecovery",
    "JournalWriter",
    "read_journal",
    "unit_fingerprint",
]
