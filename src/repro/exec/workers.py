"""The code that runs inside pool workers.

One :func:`initialize` call per worker process unpickles the shared
:class:`~repro.exec.units.WorkerContext`; after that every
:func:`run_unit` call executes one :class:`~repro.exec.units.WorkUnit`
against the worker's *own* lazily built evaluators and thermal
operators.  That locality is the whole point: the splu factor cache on
each problem template's model warms once per worker and then serves
every subsequent unit, so N workers pay N cold starts — not one per
unit.

Nothing in this module assumes a separate process.  The scheduler's
serial fallback calls :func:`install_context`/:func:`run_unit` in the
coordinating process (leaving its telemetry state alone), which is
also what makes the shim trivially testable.

Failure discipline mirrors the serial campaign exactly: library errors
(:class:`~repro.errors.ReproError`) become structured
:class:`~repro.core.FailureReport` entries plus a picklable
``(stage, type, message)`` tag — original exception objects never
cross the process boundary, because subclasses with extra constructor
arguments do not survive unpickling.  Non-library exceptions are
recorded on :attr:`UnitResult.unhandled` (the chaos contract) for the
coordinator to judge.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import threading
from typing import Callable, Optional

from ..analysis.campaign import (
    _run_benchmark,
    _StageFailure,
    run_campaign_stage,
)
from ..core import (
    CoolingProblem,
    Evaluator,
    failure_report_from_exception,
    run_oftec,
)
from ..errors import ConfigurationError, ReproError
from ..faults.inject import FaultInjector, FaultyEvaluator
from ..obs import runtime as _obs
from ..obs.clock import monotonic, stopwatch
from ..obs.export import span_to_dict
from ..thermal import SteadyStateResult, solve_steady_state_batch
from . import shm as _shm
from .units import UnitResult, WorkUnit, WorkerContext


class _WorkerRuntime:
    """Per-process state: the unpickled context and derived handles."""

    __slots__ = ("context",)

    def __init__(self, context: WorkerContext):
        self.context = context


#: The installed runtime (rebound, never mutated, by
#: :func:`initialize`).  None until the worker is initialized.
_RUNTIME: Optional[_WorkerRuntime] = None


def in_worker() -> bool:
    """True while a worker context is installed.

    This is the nested-fan-out guard: while it holds, implicit
    (environment-driven) worker resolution stays serial, so a unit
    that internally calls :meth:`~repro.core.Evaluator.evaluate_many`
    or another decomposed entry point can never spawn a pool inside a
    pool worker — or, through the serial executor, clobber the
    enclosing executor's state.  True for the lifetime of a pool
    worker process and for the duration of a serial-executor run.
    """
    return _RUNTIME is not None


def current_context() -> Optional[WorkerContext]:
    """The installed worker context, or None outside a worker.

    The supervised worker loop reads the shared
    :class:`~repro.exec.units.WorkerContext` back (for the fault plan
    driving process-level injection) without reaching into the private
    runtime holder.
    """
    runtime = _RUNTIME
    return runtime.context if runtime is not None else None


def install_runtime(context: WorkerContext,
                    ) -> Optional[_WorkerRuntime]:
    """Install a context object; return the displaced runtime.

    The return value is the previous runtime (None when there was
    none), to be handed back to :func:`restore_runtime` — the
    save/restore pair that makes the serial executor safely nestable.
    """
    # _RUNTIME is *deliberately* per-process: it IS the worker-local
    # runtime that in_worker() reads, installed by the pool
    # initializer in each child.  Nothing merges back by design.
    global _RUNTIME  # physlint: disable=RPR602
    previous = _RUNTIME
    _RUNTIME = _WorkerRuntime(context)
    return previous


def restore_runtime(previous: Optional[_WorkerRuntime]) -> None:
    """Reinstate the runtime displaced by :func:`install_runtime`."""
    global _RUNTIME
    _RUNTIME = previous


def install_context(payload: bytes) -> None:
    """Install the shared context from its pickled form.

    ``payload`` is ``pickle.dumps(WorkerContext)`` — pickled explicitly
    by the coordinator so the fork and spawn start methods (and the
    in-process serial executor) all exercise the identical
    serialization path.
    """
    install_runtime(pickle.loads(payload))


def clear_context() -> None:
    """Uninstall the worker context unconditionally (test teardown)."""
    global _RUNTIME
    _RUNTIME = None


def initialize(payload: bytes) -> None:
    """Pool-worker initializer: reset telemetry, install the context.

    Telemetry state is reset defensively (the at-fork hook already
    handles forked children; spawned workers import fresh) so a worker
    never inherits an enabled tracer it cannot report to.  The serial
    executor calls :func:`install_context` instead — resetting the
    coordinator's own telemetry mid-campaign would discard its trace.
    """
    _obs.reset()
    install_context(payload)


#: Seconds between live metric snapshots published by supervised
#: workers (see :func:`start_live_metrics`).
LIVE_METRICS_PERIOD_S = 0.5


def start_live_metrics(slot: int, telemetry_queue,
                       period: float = LIVE_METRICS_PERIOD_S,
                       ) -> threading.Event:
    """Publish periodic metric snapshots from a supervised worker.

    Starts a daemon thread that, every ``period`` seconds while the
    worker's telemetry session is active, snapshots the worker-local
    metrics registry and puts a ``("live", slot, ...)`` packet on
    ``telemetry_queue`` — the incremental feed the supervisor drains
    into the live progress board, so cache hit rates update *during*
    long units instead of only at unit completion.  Returns the stop
    event; setting it ends the thread at the next period boundary.

    Best-effort by design: a full queue drops the snapshot (the next
    one supersedes it anyway) and a snapshot torn by a concurrent
    update is skipped — the publisher must never stall or crash the
    unit it is narrating.
    """
    stop = threading.Event()

    def _loop() -> None:
        while not stop.wait(period):
            if not _obs.STATE.enabled:
                continue
            try:
                snapshot = _obs.get_metrics().snapshot()
            except Exception:  # physlint: disable=RPR201
                # The worker's main thread mutates the registry while
                # we snapshot it; any torn read (dict-changed-size,
                # transient inconsistency) just skips this period.
                continue
            try:
                telemetry_queue.put_nowait(
                    ("live", slot, None, 0, None, snapshot, 0.0, None))
            except queue_module.Full:
                continue

    thread = threading.Thread(target=_loop,
                              name=f"repro-live-metrics-{slot}",
                              daemon=True)
    thread.start()
    return stop


def run_unit(unit: WorkUnit) -> UnitResult:
    """Execute one work unit and package everything the merge needs.

    When the context asks for telemetry the unit runs under its own
    :func:`~repro.obs.telemetry_session`; the finished spans and a
    metrics snapshot ride home on the result for the coordinator to
    adopt (see :meth:`repro.obs.Tracer.adopt_records`).
    """
    runtime = _RUNTIME
    if runtime is None:
        raise ConfigurationError(
            "worker runtime not initialized; initialize() must run "
            "before run_unit()")
    context = runtime.context
    result = UnitResult(index=unit.index, name=unit.name)
    start = monotonic()
    if context.telemetry:
        with _obs.telemetry_session() as (tracer, metrics):
            _execute(context, unit, result)
            result.spans = [span_to_dict(span)
                            for span in tracer.finished]
            result.metrics = metrics.snapshot()
    else:
        _execute(context, unit, result)
    result.wall_seconds = monotonic() - start
    result.stats["pid"] = os.getpid()
    result.stats["wall_seconds"] = result.wall_seconds
    return result


def _execute(context: WorkerContext, unit: WorkUnit,
             result: UnitResult) -> None:
    if unit.kind == "benchmark":
        _execute_benchmark(context, unit, result)
    elif unit.kind == "stage":
        _execute_stage(context, unit, result)
    elif unit.kind == "points":
        _execute_points(context, unit, result)
    elif unit.kind == "fields":
        _execute_fields(context, unit, result)
    else:
        _execute_oftec(context, unit, result)


def _operator_deltas(result: UnitResult, befores, afters) -> None:
    """Record the unit's operator-counter deltas on ``result.stats``."""
    result.stats["solves"] = sum(
        a.solves - b.solves for b, a in zip(befores, afters))
    result.stats["factorizations"] = sum(
        a.factorizations - b.factorizations
        for b, a in zip(befores, afters))
    result.stats["factor_cache_hits"] = sum(
        a.cache_hits - b.cache_hits for b, a in zip(befores, afters))
    result.stats["adjoint_solves"] = sum(
        a.adjoint_solves - b.adjoint_solves
        for b, a in zip(befores, afters))


def _execute_benchmark(context: WorkerContext, unit: WorkUnit,
                       result: UnitResult) -> None:
    """One campaign benchmark: all methods, both objectives.

    Identical staging to the serial loop in
    :func:`repro.analysis.run_campaign` — same
    :func:`~repro.analysis.campaign._run_benchmark` body, same span
    nesting, same failure-report ordering — which is what the
    bit-identity contract rests on.
    """
    name = unit.name
    if context.tec_template is None or context.profiles is None:
        raise ConfigurationError(
            "benchmark units need tec/baseline templates and profiles "
            "on the worker context")
    profile = context.profiles[name]
    tec_problem = context.tec_template.with_profile(profile, name=name)
    base_problem = context.baseline_template.with_profile(
        profile, name=name)
    injector: Optional[FaultInjector] = None
    make: Callable[[CoolingProblem], Evaluator]
    if context.fault_plan is not None:
        # Each unit owns a derived injector: the fault stream depends
        # only on (root seed, benchmark name), never on which worker
        # runs the unit or in what order.
        injector = FaultInjector(context.fault_plan.derive(name))
        local_injector = injector

        def make(problem: CoolingProblem) -> Evaluator:
            return FaultyEvaluator(problem, local_injector)
    else:
        make = Evaluator
    operators = (tec_problem.model.network.operator,
                 base_problem.model.network.operator)
    befores = tuple(op.stats for op in operators)
    try:
        with _obs.span("benchmark", name), \
                stopwatch("campaign.benchmark_seconds"):
            result.value = _run_benchmark(
                name, tec_problem, base_problem, context.method,
                context.include_tec_only, make, context.resilient,
                context.policy, result.failures, jac=context.jac)
    except _StageFailure as failure:
        result.failures.append(failure_report_from_exception(
            name, failure.stage, failure.error))
        result.error = (failure.stage,
                        type(failure.error).__name__,
                        str(failure.error))
    except Exception as exc:  # physlint: disable=RPR201
        # Deliberately broader than ReproError: library errors are
        # already packaged as structured failures above, so whatever
        # reaches this handler is by definition outside the library
        # contract — a resilience bug the chaos contract says to
        # record and merge, never to poison the pool with an
        # unpicklable traceback.
        result.unhandled.append(f"{type(exc).__name__}: {exc}")
    if injector is not None:
        result.fired = injector.fired_counts()
    _operator_deltas(result, befores,
                     tuple(op.stats for op in operators))


def _execute_stage(context: WorkerContext, unit: WorkUnit,
                   result: UnitResult) -> None:
    """One pipeline stage of one campaign benchmark.

    The finer-grained decomposition: ``unit.params`` is
    ``(benchmark, stage)`` and the body routes through
    :func:`repro.analysis.campaign.run_campaign_stage` — the same
    thunk, fresh evaluator, and span the inline pipeline uses — so the
    stage-level merge reassembles the exact serial result.  Engaged
    only without a fault plan: the chaos injector's RNG advances
    across stages, so chaos benchmarks stay whole units.
    """
    benchmark, stage = unit.params
    if context.tec_template is None or context.profiles is None:
        raise ConfigurationError(
            "stage units need tec/baseline templates and profiles on "
            "the worker context")
    if context.fault_plan is not None:
        raise ConfigurationError(
            "stage units cannot run under a fault plan (the injector "
            "RNG is sequenced across stages); use benchmark units")
    profile = context.profiles[benchmark]
    tec_problem = context.tec_template.with_profile(profile,
                                                    name=benchmark)
    base_problem = context.baseline_template.with_profile(
        profile, name=benchmark)
    operators = (tec_problem.model.network.operator,
                 base_problem.model.network.operator)
    befores = tuple(op.stats for op in operators)
    try:
        # The benchmark span re-opens per stage unit so each stage span
        # keeps its benchmark ancestry after telemetry adoption.
        with _obs.span("benchmark", benchmark):
            result.value = run_campaign_stage(
                stage, benchmark, tec_problem, base_problem,
                context.method, Evaluator, context.resilient,
                context.policy, result.failures, jac=context.jac)
    except _StageFailure as failure:
        result.failures.append(failure_report_from_exception(
            benchmark, failure.stage, failure.error))
        result.error = (failure.stage,
                        type(failure.error).__name__,
                        str(failure.error))
    except Exception as exc:  # physlint: disable=RPR201
        # Same contract as benchmark units: anything non-library is a
        # bug to record and merge, never an unpicklable traceback.
        result.unhandled.append(f"{type(exc).__name__}: {exc}")
    _operator_deltas(result, befores,
                     tuple(op.stats for op in operators))


def _execute_points(context: WorkerContext, unit: WorkUnit,
                    result: UnitResult) -> None:
    """One chunk of ``(omega, I)`` evaluations.

    A fresh evaluator per chunk keeps the values independent of chunk
    boundaries; the expensive state (the operator factor cache on the
    shared problem model) persists across chunks within the worker.
    """
    if context.point_problem is None:
        raise ConfigurationError(
            "points units need point_problem on the worker context")
    operator = context.point_problem.model.network.operator
    before = operator.stats
    evaluator = Evaluator(context.point_problem)
    try:
        with _obs.span("points", unit.name, count=len(unit.params)):
            result.value = evaluator.evaluate_many(list(unit.params))
    except ReproError as exc:
        result.error = (unit.kind, type(exc).__name__, str(exc))
    _operator_deltas(result, (before,), (operator.stats,))


def _execute_fields(context: WorkerContext, unit: WorkUnit,
                    result: UnitResult) -> None:
    """One chunk of temperature-field solves (heat-map batches)."""
    if context.field_model is None:
        raise ConfigurationError(
            "fields units need field_model/field_power on the worker "
            "context")
    operator = context.field_model.network.operator
    before = operator.stats
    # The power map crosses the boundary as a SharedArrayRef when an
    # shm plane was open; on the direct paths (threads, unpicklable
    # fallback) the wrapper arrives intact and unwraps here.
    power = context.field_power
    if isinstance(power, _shm.SharedArrayRef):
        power = power.array
    try:
        with _obs.span("fields", unit.name, count=len(unit.params)):
            outcomes = solve_steady_state_batch(
                context.field_model, list(unit.params),
                power, leakage=context.field_leakage)
        result.value = [
            outcome.chip_temperatures
            if isinstance(outcome, SteadyStateResult) else None
            for outcome in outcomes]
    except ReproError as exc:
        result.error = (unit.kind, type(exc).__name__, str(exc))
    _operator_deltas(result, (before,), (operator.stats,))


def _execute_oftec(context: WorkerContext, unit: WorkUnit,
                   result: UnitResult) -> None:
    """One LUT row: a full OFTEC run on one representative profile."""
    if context.oftec_template is None or context.oftec_profiles is None:
        raise ConfigurationError(
            "oftec units need oftec_template/oftec_profiles on the "
            "worker context")
    operator = context.oftec_template.model.network.operator
    before = operator.stats
    problem = context.oftec_template.with_profile(
        dict(context.oftec_profiles[unit.name]), name=unit.name)
    try:
        result.value = run_oftec(problem, method=context.method,
                                 jac=context.jac)
    except ReproError as exc:
        result.error = (unit.kind, type(exc).__name__, str(exc))
    _operator_deltas(result, (before,), (operator.stats,))


__all__ = ["LIVE_METRICS_PERIOD_S", "initialize", "run_unit",
           "start_live_metrics"]
