"""Supervised execution: heartbeats, deadlines, retries, quarantine.

The plain pool (:func:`repro.exec.run_units`) assumes workers are
immortal: a hung SLSQP solve stalls the campaign forever and an
OOM-killed worker surfaces as a ``BrokenProcessPool`` that forfeits
every completed unit.  The supervisor replaces the executor with
directly managed ``multiprocessing`` workers the coordinator can
actually observe and kill:

* **Heartbeats.**  Each worker runs a daemon thread bumping a shared
  per-slot counter; the coordinator tracks *when each counter last
  changed* (its own monotonic clock — nothing compares clocks across
  processes), kills workers whose beats go silent, and replaces them.
* **Deadlines.**  Every dispatched unit arms a monotonic
  :class:`~repro.obs.Deadline`; a worker that holds a unit past it is
  killed and replaced.  Wall-clock (``time.time``) never participates,
  so NTP steps and suspend/resume cannot fire or starve a watchdog.
* **Retries.**  A failed attempt (crash, deadline, silence, unhandled
  exception) is re-queued with exponential backoff plus deterministic
  jitter.  Every unit execution re-derives its fault/RNG streams from
  its own label (see :meth:`repro.faults.FaultPlan.derive`), so a
  retried unit computes bit-identical physics to an undisturbed run.
* **Quarantine.**  A unit that fails ``max_attempts`` times is
  quarantined with its per-attempt post-mortems; the campaign
  *completes* with a structured ``quarantined`` section instead of
  raising away every healthy unit's work.
* **Circuit breaker.**  Repeated pool-level infrastructure failures
  (workers that cannot even be spawned) open the circuit: an
  ``exec.circuit_open`` event fires and the remaining units degrade
  to the in-process serial executor.

Process-level chaos (``worker-kill`` / ``worker-hang`` /
``worker-slow`` in a :class:`~repro.faults.FaultPlan`) is injected
*here*, by the supervised worker loop itself — the serial executor and
the plain pool ignore those kinds, because an unsupervised
``os._exit`` would take the whole campaign with it.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from ..faults.plan import FaultKind, process_fault_decision
from ..obs import runtime as _obs
from ..obs.clock import Deadline, monotonic
from . import shm as _shm
from . import workers as _workers
from .journal import JournalWriter
from .scheduler import (START_METHOD_ENV, _adopt_telemetry,
                        adopt_unit_telemetry)
from .units import UnitResult, WorkUnit, WorkerContext

#: Exit code a worker dies with when a ``worker-kill`` fault fires —
#: distinguishable from real crashes in the quarantine post-mortems.
KILL_EXIT_CODE = 113

#: Stall injected by a ``worker-slow`` fault before the unit runs (s).
#: Long enough to be visible next to the heartbeat interval, short
#: enough never to threaten a sane deadline.
SLOW_FAULT_DELAY_S = 0.25


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervised executor.

    Attributes:
        unit_deadline_seconds: Monotonic wall budget per unit attempt
            (s); a worker holding a unit longer is killed and the
            attempt counted as failed.
        heartbeat_interval_seconds: Period of the worker heartbeat
            thread (s).
        heartbeat_timeout_seconds: Silence tolerated before a live
            worker is declared hung and killed (s); must exceed the
            interval by a comfortable margin.
        max_attempts: Total attempts per unit before quarantine
            (1 = never retry).
        backoff_base_seconds: Delay before the first retry (s).
        backoff_factor: Multiplier applied per subsequent retry.
        backoff_max_seconds: Ceiling on any single backoff delay (s).
        backoff_jitter: Fractional deterministic jitter in
            ``[0, 1)`` — each (unit, attempt) perturbs its delay by a
            hash-derived factor in ``[1 - j, 1 + j]``, decorrelating
            retry bursts without introducing nondeterminism.
        circuit_breaker_failures: Worker *spawn* failures tolerated
            before the circuit opens and the remaining units run
            serially in-process.
        poll_interval_seconds: Coordinator supervision poll period (s).
    """

    unit_deadline_seconds: float = 300.0
    heartbeat_interval_seconds: float = 0.1
    heartbeat_timeout_seconds: float = 5.0
    max_attempts: int = 3
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 2.0
    backoff_jitter: float = 0.25
    circuit_breaker_failures: int = 3
    poll_interval_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.unit_deadline_seconds <= 0.0:
            raise ConfigurationError(
                f"unit_deadline_seconds must be > 0, got "
                f"{self.unit_deadline_seconds}")
        if self.heartbeat_interval_seconds <= 0.0:
            raise ConfigurationError(
                f"heartbeat_interval_seconds must be > 0, got "
                f"{self.heartbeat_interval_seconds}")
        if self.heartbeat_timeout_seconds \
                < 2.0 * self.heartbeat_interval_seconds:
            raise ConfigurationError(
                "heartbeat_timeout_seconds must be at least twice the "
                "interval or every healthy worker looks hung")
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_seconds < 0.0:
            raise ConfigurationError(
                f"backoff_base_seconds must be >= 0, got "
                f"{self.backoff_base_seconds}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got "
                f"{self.backoff_factor}")
        if self.backoff_max_seconds < self.backoff_base_seconds:
            raise ConfigurationError(
                "backoff_max_seconds must be >= backoff_base_seconds")
        if not (0.0 <= self.backoff_jitter < 1.0):
            raise ConfigurationError(
                f"backoff_jitter must be in [0, 1), got "
                f"{self.backoff_jitter}")
        if self.circuit_breaker_failures < 1:
            raise ConfigurationError(
                f"circuit_breaker_failures must be >= 1, got "
                f"{self.circuit_breaker_failures}")
        if self.poll_interval_seconds <= 0.0:
            raise ConfigurationError(
                f"poll_interval_seconds must be > 0, got "
                f"{self.poll_interval_seconds}")

    def backoff_seconds(self, label: str, attempt: int) -> float:
        """Delay before retrying ``label`` after failed attempt N (s).

        Exponential in the attempt number, capped, and jittered by a
        blake2b hash of ``(label, attempt)`` — deterministic, so a
        replayed campaign schedules byte-identical retries, yet
        decorrelated across units so a mass failure does not thunder
        back as one herd.
        """
        import hashlib
        delay = min(
            self.backoff_base_seconds
            * self.backoff_factor ** max(attempt - 1, 0),
            self.backoff_max_seconds)
        if self.backoff_jitter > 0.0 and delay > 0.0:
            digest = hashlib.blake2b(
                f"{label}:{attempt}".encode("utf-8"),
                digest_size=8).digest()
            unit_draw = int.from_bytes(digest, "big") / float(2 ** 64)
            delay *= 1.0 + self.backoff_jitter * (2.0 * unit_draw - 1.0)
        return delay


@dataclass
class QuarantinedUnit:
    """Post-mortem of a unit that exhausted its attempts.

    Attributes:
        index: Submission index of the unit.
        name: Unit label (benchmark name / chunk id).
        attempts: Attempts consumed (== policy ``max_attempts``).
        errors: One ``"reason"`` line per failed attempt, in order.
    """

    index: int
    name: str
    attempts: int
    errors: List[str] = field(default_factory=list)


@dataclass
class SupervisedOutcome:
    """Everything a supervised run produced.

    Attributes:
        results: Per-unit results in submission order; None where the
            unit was quarantined.
        quarantined: Post-mortems of the units that never completed.
        retries: Attempts beyond the first, summed over units.
        replacements: Workers killed-and-respawned (deadline,
            heartbeat, crash) plus spawn failures.
        process_fired: Injected process-level fault fires per kind
            value (recomputed from the plan — the coordinator never
            needs the worker to report its own death).
        circuit_opened: True when the run degraded to the serial
            executor.
    """

    results: List[Optional[UnitResult]]
    quarantined: List[QuarantinedUnit] = field(default_factory=list)
    retries: int = 0
    replacements: int = 0
    process_fired: Dict[str, int] = field(default_factory=dict)
    circuit_opened: bool = False

    @property
    def completed(self) -> List[UnitResult]:
        """The non-quarantined results, in submission order."""
        return [result for result in self.results if result is not None]


def _heartbeat_loop(slot: int, heartbeats: Any, interval: float,
                    silenced: threading.Event) -> None:
    """Worker-side daemon: bump the shared slot until silenced."""
    while not silenced.is_set():
        with heartbeats.get_lock():
            heartbeats[slot] += 1.0
        silenced.wait(interval)


def _supervised_main(slot: int, payload: bytes, task_queue: Any,
                     result_queue: Any, heartbeats: Any,
                     interval: float,
                     telemetry_queue: Any = None) -> None:
    """Entry point of a supervised worker process.

    Installs the shared context, starts the heartbeat thread, then
    serves ``(unit, attempt)`` tasks until the ``None`` sentinel.
    Process-level faults from the context's plan are decided here —
    deterministically, per (unit label, attempt) — before the unit
    runs, so the coordinator can recompute every decision without a
    side channel.

    With a ``telemetry_queue`` the worker also streams incrementally:
    a live-metrics thread publishes periodic snapshots mid-unit, and
    each finished unit's spans/metrics ship as a ``"final"`` packet
    *before* the result itself — which is then stripped of telemetry,
    so the coordinator adopts each unit's trace exactly once and the
    result pickle crossing the queue stays small.
    """
    _workers.initialize(payload)
    silenced = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(slot, heartbeats, interval, silenced), daemon=True)
    beat.start()
    live_stop: Optional[threading.Event] = None
    if telemetry_queue is not None:
        live_stop = _workers.start_live_metrics(slot, telemetry_queue)
    context = _workers.current_context()
    plan = context.fault_plan if context is not None else None
    while True:
        item = task_queue.get()
        if item is None:
            silenced.set()
            if live_stop is not None:
                live_stop.set()
            return
        unit, attempt = item
        fault = process_fault_decision(plan, unit.name, attempt)
        if fault is FaultKind.WORKER_KILL:
            os._exit(KILL_EXIT_CODE)
        if fault is FaultKind.WORKER_HANG:
            # A real hang takes the heartbeat with it (a deadlocked
            # process beats no drums); silencing the thread makes the
            # injected hang indistinguishable from one.
            silenced.set()
            while True:
                time.sleep(interval)
        if fault is FaultKind.WORKER_SLOW:
            time.sleep(SLOW_FAULT_DELAY_S)
        try:
            result = _workers.run_unit(unit)
        except Exception as exc:  # physlint: disable=RPR201
            # Broad by contract: run_unit already packages library
            # errors, so anything landing here is outside the library
            # contract.  The supervisor treats it as a failed attempt
            # (retry, then quarantine) — raising would kill the worker
            # and cost a respawn for an error we can report precisely.
            result = UnitResult(index=unit.index, name=unit.name)
            result.unhandled.append(f"{type(exc).__name__}: {exc}")
        if telemetry_queue is not None and (
                result.spans is not None
                or result.metrics is not None):
            telemetry_queue.put(
                ("final", slot, unit.index, attempt, result.spans,
                 result.metrics, result.wall_seconds,
                 result.stats.get("pid")))
            result.spans = None
            result.metrics = None
        result_queue.put((slot, unit.index, attempt, result))


class _WorkerHandle:
    """Coordinator-side view of one supervised worker slot."""

    __slots__ = ("slot", "process", "queue", "unit", "attempt",
                 "deadline", "last_beat", "beat_seen_at")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process: Any = None
        self.queue: Any = None
        self.unit: Optional[WorkUnit] = None
        self.attempt = 0
        self.deadline: Optional[Deadline] = None
        self.last_beat = 0.0
        self.beat_seen_at = 0.0

    @property
    def busy(self) -> bool:
        return self.unit is not None


def _counter(name: str) -> None:
    """Increment an obs counter when telemetry is live (else no-op)."""
    if _obs.STATE.enabled:
        _obs.STATE.metrics.counter(name).inc()


class _Supervisor:
    """One supervised run: owns the workers, the retry queue, and the
    quarantine ledger for the duration of :meth:`run`."""

    def __init__(self, context: WorkerContext,
                 units: Sequence[WorkUnit], workers: int,
                 policy: SupervisionPolicy,
                 journal: Optional[JournalWriter],
                 completed: Optional[Mapping[int, UnitResult]],
                 monitor: Optional[Any] = None) -> None:
        self.context = context
        self.units = list(units)
        self.workers = max(int(workers), 1)
        self.policy = policy
        self.journal = journal
        self.monitor = monitor
        self.outcome = SupervisedOutcome(
            results=[None] * len(self.units))
        self._by_index = {unit.index: unit for unit in self.units}
        self._position = {unit.index: pos
                          for pos, unit in enumerate(self.units)}
        self._failures: Dict[int, List[str]] = {}
        self._pending: List[tuple] = []  # (ready_at, index, attempt)
        self._quarantined_ids: set = set()
        self._spawn_failures = 0
        self._fresh: List[UnitResult] = []
        self._telemetry_queue: Any = None
        # Streamed "final" packets arriving before their result is
        # collected, keyed (index, attempt); drained on completion.
        self._telemetry_packets: Dict[tuple, tuple] = {}
        self._accepted: Dict[int, int] = {}  # index -> winning attempt
        self._adopted: set = set()  # indices adopted from packets
        seeded = dict(completed or {})
        for unit in self.units:
            prior = seeded.get(unit.index)
            if prior is not None:
                self.outcome.results[self._position[unit.index]] = prior
            else:
                self._pending.append((0.0, unit.index, 1))
        self._pending.sort()

    # -- lifecycle ----------------------------------------------------

    def run(self) -> SupervisedOutcome:
        """Execute every non-journaled unit to completion or quarantine."""
        if not self._pending:
            return self.outcome
        if self.monitor is not None:
            self.monitor.begin(len(self._pending))
        # The publication scope spans the whole supervised run, not
        # just the initial spawn: replacement workers respawned after
        # a kill attach to the shm segments arbitrarily late, so the
        # plane must stay open until the last worker is down.
        with _shm.publication():
            payload: Optional[bytes] = None
            try:
                payload = pickle.dumps(self.context)
            except Exception as exc:  # physlint: disable=RPR201
                # Same broad probe as run_units: unpicklability
                # surfaces as whatever __reduce__ raises.  An
                # unpicklable context cannot be supervised across
                # processes, but the serial path still runs it.
                _obs.event("exec.pool_fallback",
                           error=type(exc).__name__)
            if payload is None or self.workers < 2 \
                    or _workers.in_worker():
                self._run_serial_remaining(self.context)
            else:
                self._run_pool(payload)
        # End-of-run adoption covers the serial paths and any pool unit
        # whose streamed packet was lost; streamed indices are excluded
        # so no unit's trace is adopted twice.
        _adopt_telemetry(sorted(
            (r for r in self._fresh if r.index not in self._adopted),
            key=lambda r: self._position[r.index]))
        return self.outcome

    def _run_pool(self, payload: bytes) -> None:
        import multiprocessing
        method = os.environ.get(START_METHOD_ENV, "").strip()
        mp_context = multiprocessing.get_context(method or None)
        slots = min(self.workers, len(self._pending))
        heartbeats = mp_context.Array("d", slots)
        result_queue = mp_context.Queue()
        if self.context.telemetry or self.monitor is not None:
            self._telemetry_queue = mp_context.Queue()
        handles = [_WorkerHandle(slot) for slot in range(slots)]
        try:
            for handle in handles:
                self._spawn(handle, mp_context, payload, heartbeats,
                            result_queue)
                if self._circuit_should_open():
                    break
            if not any(h.process is not None and h.process.is_alive()
                       for h in handles):
                self._open_circuit(handles)
                return
            while not self._finished():
                if self._circuit_should_open():
                    self._open_circuit(handles)
                    return
                self._dispatch(handles)
                self._collect(result_queue, handles)
                self._drain_telemetry()
                self._sweep(handles, mp_context, payload, heartbeats,
                            result_queue)
        finally:
            self._await_telemetry()
            self._shutdown(handles)

    # -- worker management --------------------------------------------

    def _spawn(self, handle: _WorkerHandle, mp_context: Any,
               payload: bytes, heartbeats: Any,
               result_queue: Any) -> None:
        """(Re)start the worker process occupying ``handle``'s slot."""
        handle.queue = mp_context.Queue()
        process = mp_context.Process(
            target=_supervised_main,
            args=(handle.slot, payload, handle.queue, result_queue,
                  heartbeats, self.policy.heartbeat_interval_seconds,
                  self._telemetry_queue),
            daemon=True)
        try:
            process.start()
        except OSError as exc:
            handle.process = None
            self._spawn_failures += 1
            self.outcome.replacements += 1
            _obs.event("exec.worker_spawn_failed", slot=handle.slot,
                       error=type(exc).__name__)
            _counter("exec.supervisor.spawn_failures")
            return
        handle.process = process
        handle.unit = None
        handle.attempt = 0
        handle.deadline = None
        handle.last_beat = heartbeats[handle.slot]
        handle.beat_seen_at = monotonic()

    def _kill(self, handle: _WorkerHandle) -> None:
        """Forcibly stop the process in ``handle``'s slot."""
        process = handle.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        if handle.queue is not None:
            handle.queue.cancel_join_thread()
        handle.process = None

    def _replace(self, handle: _WorkerHandle, reason: str,
                 mp_context: Any, payload: bytes, heartbeats: Any,
                 result_queue: Any) -> None:
        """Kill and respawn one worker, accounting the replacement."""
        self._kill(handle)
        self.outcome.replacements += 1
        _obs.event("exec.worker_replaced", slot=handle.slot,
                   reason=reason)
        _counter("exec.supervisor.replacements")
        self._spawn(handle, mp_context, payload, heartbeats,
                    result_queue)

    def _shutdown(self, handles: Sequence[_WorkerHandle]) -> None:
        """Stop every worker; gentle sentinel first, then terminate."""
        for handle in handles:
            if handle.process is not None and handle.process.is_alive()\
                    and handle.queue is not None and not handle.busy:
                try:
                    handle.queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = Deadline(1.0)
        for handle in handles:
            process = handle.process
            if process is not None and process.is_alive():
                process.join(max(deadline.remaining(), 0.05))
        for handle in handles:
            self._kill(handle)

    # -- scheduling ---------------------------------------------------

    def _finished(self) -> bool:
        done = sum(1 for result in self.outcome.results
                   if result is not None)
        return done + len(self.outcome.quarantined) >= len(self.units)

    def _dispatch(self, handles: Sequence[_WorkerHandle]) -> None:
        """Hand ready units to idle live workers, lowest index first."""
        now = monotonic()
        for handle in handles:
            if handle.busy or handle.process is None \
                    or not handle.process.is_alive():
                continue
            # Purge retries whose unit a kill-raced late result has
            # already completed, then take the first ready entry.
            self._pending = [
                entry for entry in self._pending
                if self.outcome.results[self._position[entry[1]]]
                is None and entry[1] not in self._quarantined_ids]
            chosen = None
            for position, (ready_at, index, attempt) in \
                    enumerate(self._pending):
                if ready_at <= now:
                    chosen = position
                    break
            if chosen is None:
                return
            ready_at, index, attempt = self._pending.pop(chosen)
            unit = self._by_index[index]
            fault = process_fault_decision(self.context.fault_plan,
                                           unit.name, attempt)
            if fault is not None:
                self.outcome.process_fired[fault.value] = \
                    self.outcome.process_fired.get(fault.value, 0) + 1
                _counter(f"faults.injected.{fault.value}")
            handle.queue.put((unit, attempt))
            handle.unit = unit
            handle.attempt = attempt
            handle.deadline = Deadline(
                self.policy.unit_deadline_seconds)
            handle.beat_seen_at = now
            if self.monitor is not None:
                self.monitor.unit_running(unit.name, attempt)

    def _collect(self, result_queue: Any,
                 handles: Sequence[_WorkerHandle]) -> None:
        """Drain finished attempts; block briefly as the poll sleep."""
        block = True
        while True:
            try:
                message = result_queue.get(
                    timeout=self.policy.poll_interval_seconds
                    if block else 0.0)
            except _queue.Empty:
                return
            block = False
            slot, index, attempt, result = message
            owner = None
            for handle in handles:
                if handle.busy and handle.unit.index == index \
                        and handle.attempt == attempt:
                    owner = handle
                    break
            if owner is not None:
                owner.unit = None
                owner.deadline = None
            position = self._position.get(index)
            if position is None \
                    or self.outcome.results[position] is not None \
                    or index in self._quarantined_ids:
                continue  # stale duplicate from a replaced worker
            if result.unhandled:
                for line in result.unhandled:
                    self._attempt_failed(index, attempt,
                                         f"unhandled: {line}")
            else:
                self._complete(result, attempt=attempt)

    def _sweep(self, handles: Sequence[_WorkerHandle], mp_context: Any,
               payload: bytes, heartbeats: Any,
               result_queue: Any) -> None:
        """Deadline/heartbeat/liveness pass over the busy workers."""
        now = monotonic()
        for handle in handles:
            process = handle.process
            if process is None:
                if not self._circuit_should_open():
                    self._spawn(handle, mp_context, payload,
                                heartbeats, result_queue)
                continue
            beat = heartbeats[handle.slot]
            if beat != handle.last_beat:
                handle.last_beat = beat
                handle.beat_seen_at = now
            if not handle.busy:
                if not process.is_alive():
                    # Idle death is infrastructure, not unit failure.
                    self._spawn_failures += 1
                    self._replace(handle, "idle-death", mp_context,
                                  payload, heartbeats, result_queue)
                continue
            index = handle.unit.index
            attempt = handle.attempt
            if not process.is_alive():
                code = process.exitcode
                self._attempt_failed(
                    index, attempt,
                    f"worker died with exit code {code}")
                self._replace(handle, "crash", mp_context, payload,
                              heartbeats, result_queue)
            elif handle.deadline is not None \
                    and handle.deadline.expired:
                self._attempt_failed(
                    index, attempt,
                    f"unit deadline exceeded "
                    f"({self.policy.unit_deadline_seconds:g} s)")
                _counter("exec.supervisor.deadline_kills")
                self._replace(handle, "deadline", mp_context, payload,
                              heartbeats, result_queue)
            elif now - handle.beat_seen_at \
                    > self.policy.heartbeat_timeout_seconds:
                self._attempt_failed(
                    index, attempt,
                    f"worker heartbeats silent for "
                    f"{self.policy.heartbeat_timeout_seconds:g} s")
                _counter("exec.supervisor.heartbeat_kills")
                self._replace(handle, "heartbeat", mp_context,
                              payload, heartbeats, result_queue)

    # -- streamed telemetry -------------------------------------------

    def _drain_telemetry(self) -> None:
        """Pull every queued telemetry packet without blocking."""
        queue = self._telemetry_queue
        if queue is None:
            return
        while True:
            try:
                packet = queue.get_nowait()
            except _queue.Empty:
                return
            self._handle_packet(packet)

    def _handle_packet(self, packet: tuple) -> None:
        """Route one worker telemetry packet.

        ``live`` packets feed the monitor immediately.  ``final``
        packets are adopted only for the attempt whose result the
        coordinator accepted — a kill-raced duplicate attempt's
        telemetry is dropped, keeping the merged trace bit-for-bit
        free of phantom units — and are buffered when they outrun
        their own result across the two queues.
        """
        kind, _slot, index, attempt = packet[:4]
        if kind == "live":
            if self.monitor is not None and packet[5]:
                self.monitor.live_metrics(packet[5])
            return
        if index in self._quarantined_ids:
            return
        accepted = self._accepted.get(index)
        if accepted is None:
            self._telemetry_packets[(index, attempt)] = packet
        elif accepted == attempt:
            self._adopt_packet(packet)

    def _adopt_packet(self, packet: tuple) -> None:
        """Graft one accepted ``final`` packet onto the live trace."""
        _kind, _slot, index, _attempt, spans, metrics, wall, pid = \
            packet
        if index in self._adopted:
            return
        self._adopted.add(index)
        adopt_unit_telemetry(self._by_index[index].name, index, pid,
                             wall, spans, metrics)
        if self.monitor is not None and metrics:
            self.monitor.live_metrics(metrics)

    def _await_telemetry(self) -> None:
        """Briefly wait out final packets still crossing the queue.

        A worker puts its ``final`` packet before the result, but the
        two multiprocessing queues flush through independent feeder
        threads, so the packet can trail the result the coordinator
        already accepted.  Bounded wait: packets are best-effort, and
        any unit left unadopted here is picked up (sans worker spans)
        by the end-of-run merge.
        """
        if self._telemetry_queue is None or not self.context.telemetry \
                or self.outcome.circuit_opened:
            return
        deadline = Deadline(2.0)
        while True:
            self._drain_telemetry()
            if all(index in self._adopted for index in self._accepted):
                return
            if deadline.expired:
                return
            time.sleep(0.01)

    # -- attempt bookkeeping ------------------------------------------

    def _complete(self, result: UnitResult,
                  attempt: Optional[int] = None) -> None:
        """Record a successful unit: merge slot, journal, telemetry."""
        position = self._position[result.index]
        self.outcome.results[position] = result
        self._fresh.append(result)
        if self.journal is not None:
            self.journal.append(result)
        if attempt is not None:
            self._accepted[result.index] = attempt
            packet = self._telemetry_packets.pop(
                (result.index, attempt), None)
            if packet is not None:
                self._adopt_packet(packet)
        if self.monitor is not None:
            self.monitor.unit_done(result.name, result.wall_seconds,
                                   ok=result.error is None)

    def _attempt_failed(self, index: int, attempt: int,
                        reason: str) -> None:
        """Count one failed attempt; schedule a retry or quarantine."""
        failures = self._failures.setdefault(index, [])
        failures.append(reason)
        unit = self._by_index[index]
        if attempt >= self.policy.max_attempts:
            self._quarantined_ids.add(index)
            self.outcome.quarantined.append(QuarantinedUnit(
                index=index, name=unit.name, attempts=attempt,
                errors=list(failures)))
            _obs.event("exec.quarantine", unit=unit.name,
                       attempts=attempt)
            _counter("exec.supervisor.quarantined")
            if self.monitor is not None:
                self.monitor.unit_quarantined(unit.name, attempt)
            return
        self.outcome.retries += 1
        delay = self.policy.backoff_seconds(unit.name, attempt)
        ready_at = monotonic() + delay
        _obs.event("exec.retry", unit=unit.name, attempt=attempt,
                   reason=reason, backoff_seconds=delay)
        _counter("exec.supervisor.retries")
        if self.monitor is not None:
            self.monitor.unit_retrying(unit.name, attempt, reason)
        self._pending.append((ready_at, index, attempt + 1))
        self._pending.sort()

    # -- degraded paths -----------------------------------------------

    def _circuit_should_open(self) -> bool:
        return self._spawn_failures \
            >= self.policy.circuit_breaker_failures

    def _open_circuit(self, handles: Sequence[_WorkerHandle]) -> None:
        """Degrade: stop the pool, run the rest in-process serially."""
        self.outcome.circuit_opened = True
        _obs.event("exec.circuit_open",
                   spawn_failures=self._spawn_failures)
        _counter("exec.supervisor.circuit_open")
        self._shutdown(handles)
        self._run_serial_remaining(self.context)

    def _run_serial_remaining(self, context: WorkerContext) -> None:
        """Run every still-incomplete unit through the serial shim.

        Process-level faults do not fire here — there is no worker to
        kill that is not also the coordinator — and in-process library
        failures are structured *results*, so no retry loop applies;
        this is exactly the plain serial executor plus journaling.
        """
        remaining = [unit for unit in self.units
                     if self.outcome.results[self._position[unit.index]]
                     is None and unit.index not in self._quarantined_ids]
        if not remaining:
            return
        previous = _workers.install_runtime(context)
        try:
            for unit in remaining:
                if self.monitor is not None:
                    self.monitor.unit_running(unit.name)
                self._complete(_workers.run_unit(unit))
        finally:
            _workers.restore_runtime(previous)
        self._pending = []


def run_units_supervised(
    context: WorkerContext,
    units: Sequence[WorkUnit],
    workers: int,
    policy: Optional[SupervisionPolicy] = None,
    journal: Optional[JournalWriter] = None,
    completed: Optional[Mapping[int, UnitResult]] = None,
    monitor: Optional[Any] = None,
) -> SupervisedOutcome:
    """Run units under supervision; never raises for worker death.

    The supervised counterpart of :func:`repro.exec.run_units`: same
    submission-order merge and bit-identical results, but worker
    crashes, hangs, and slowdowns are absorbed by retries and — past
    ``policy.max_attempts`` — quarantine.  ``journal`` durably records
    every completed unit; ``completed`` (from
    :func:`repro.exec.read_journal`) pre-seeds results so a resumed
    campaign skips finished work.  ``workers < 2`` runs the serial
    executor with journaling (nothing to supervise in-process).

    ``monitor`` (a :class:`~repro.obs.ProgressBoard`, or anything with
    its hook methods) receives the unit lifecycle — including
    supervision-only states (``unit_retrying``, ``unit_quarantined``)
    — plus ``live_metrics`` snapshots streamed mid-run from workers.
    """
    supervisor = _Supervisor(context, units, workers,
                             policy or SupervisionPolicy(),
                             journal, completed, monitor=monitor)
    return supervisor.run()


__all__ = [
    "KILL_EXIT_CODE",
    "QuarantinedUnit",
    "SLOW_FAULT_DELAY_S",
    "SupervisedOutcome",
    "SupervisionPolicy",
    "run_units_supervised",
]
