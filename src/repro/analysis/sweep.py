"""Design-space sweeps over ``(omega, I_TEC)``: Figures 6(a) and 6(b).

The paper's surface plots show the two objectives over the whole
operating plane for Basicmath: the maximum die temperature 𝒯 (whose
runaway region at low omega renders as "infinity") and the cooling power
𝒫.  :func:`sweep_objective_surfaces` evaluates both on a rectangular
sample grid in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..core import CoolingProblem, Evaluator


@dataclass
class SurfaceSweep:
    """Sampled objective surfaces over the (omega, I) plane.

    Attributes:
        omegas: Fan-speed axis, rad/s.
        currents: Current axis, A.
        temperature: 𝒯 surface, K, shape (len(omegas), len(currents));
            ``inf`` marks thermal runaway.
        power: 𝒫 surface, W, same shape and runaway convention.
        feasible: Boolean mask of points meeting the thermal constraint.
        problem_name: Workload label.
    """

    omegas: np.ndarray
    currents: np.ndarray
    temperature: np.ndarray
    power: np.ndarray
    feasible: np.ndarray
    problem_name: str

    @property
    def runaway_mask(self) -> np.ndarray:
        """True where no bounded steady state exists."""
        return ~np.isfinite(self.temperature)

    def min_temperature_point(self) -> Tuple[float, float, float]:
        """``(omega, current, 𝒯)`` of the coolest sampled point."""
        masked = np.where(np.isfinite(self.temperature),
                          self.temperature, np.inf)
        flat = int(np.argmin(masked))
        i, j = np.unravel_index(flat, masked.shape)
        return (float(self.omegas[i]), float(self.currents[j]),
                float(masked[i, j]))

    def min_power_point(self, feasible_only: bool = True,
                        ) -> Tuple[float, float, float]:
        """``(omega, current, 𝒫)`` of the cheapest sampled point."""
        power = np.where(np.isfinite(self.power), self.power, np.inf)
        if feasible_only:
            power = np.where(self.feasible, power, np.inf)
        if not np.isfinite(power).any():
            raise ConfigurationError(
                "No feasible point in the sweep; widen the sample grid")
        flat = int(np.argmin(power))
        i, j = np.unravel_index(flat, power.shape)
        return (float(self.omegas[i]), float(self.currents[j]),
                float(power[i, j]))

    def runaway_boundary_omega(self) -> np.ndarray:
        """Per-current smallest omega with a bounded steady state.

        This traces the cliff edge the paper describes: "increasing I_TEC
        alone cannot rescue the chip from the thermal runaway situation;
        omega should also be increased".  Entries are NaN when every
        sampled omega runs away at that current.
        """
        boundary = np.full(self.currents.size, np.nan)
        finite = np.isfinite(self.temperature)
        for j in range(self.currents.size):
            rows = np.flatnonzero(finite[:, j])
            if rows.size:
                boundary[j] = self.omegas[rows[0]]
        return boundary


def sweep_objective_surfaces(
    problem: CoolingProblem,
    omega_points: int = 24,
    current_points: int = 21,
    omega_range: Optional[Tuple[float, float]] = None,
    current_range: Optional[Tuple[float, float]] = None,
    evaluator: Optional[Evaluator] = None,
    workers: Optional[int] = None,
    progress: Optional[object] = None,
    executor: Optional[str] = None,
) -> SurfaceSweep:
    """Evaluate 𝒯 and 𝒫 on a rectangular (omega, I) sample grid.

    Runaway points record ``inf`` in both surfaces (the paper plots them
    as the saturated "dark red" region).

    ``workers`` fans the grid across worker processes, one omega row
    per chunk (None defers to ``REPRO_WORKERS``; 0 stays in-process).
    Surfaces are identical across worker counts.  ``progress`` (a
    :class:`repro.obs.ProgressBoard`) receives per-chunk lifecycle
    events on the fanned-out path.  ``executor`` picks the fan-out
    backend (``"process"``, ``"thread"``, ``"serial"``; None defers to
    ``REPRO_EXECUTOR``).
    """
    if omega_points < 2 or current_points < 1:
        raise ConfigurationError(
            "Need at least 2 omega and 1 current sample")
    limits = problem.limits
    omega_lo, omega_hi = omega_range or (0.0, limits.omega_max)
    current_hi_default = problem.current_upper_bound
    current_lo, current_hi = current_range or (0.0, current_hi_default)
    if not (0.0 <= omega_lo < omega_hi <= limits.omega_max):
        raise ConfigurationError(f"Bad omega range [{omega_lo}, {omega_hi}]")
    if current_hi > 0 and not (0.0 <= current_lo <= current_hi
                               <= limits.i_tec_max):
        raise ConfigurationError(
            f"Bad current range [{current_lo}, {current_hi}]")

    omegas = np.linspace(omega_lo, omega_hi, omega_points)
    if current_points == 1 or current_hi <= current_lo:
        currents = np.array([current_lo])
    else:
        currents = np.linspace(current_lo, current_hi, current_points)
    evaluator = evaluator or Evaluator(problem)

    shape = (omegas.size, currents.size)
    temperature = np.full(shape, np.inf)
    power = np.full(shape, np.inf)
    feasible = np.zeros(shape, dtype=bool)
    points = [(float(omega), float(current))
              for omega in omegas for current in currents]
    evaluations = None
    if evaluator._batchable():
        from ..exec import evaluate_points, resolve_workers
        worker_count = resolve_workers(workers)
        if worker_count >= 1:
            # One omega row per chunk: row boundaries are fixed by the
            # grid (not the worker count), and every point in a row
            # shares its fan operating point, so a chunk's solves
            # group under few factorizations.
            evaluations = evaluate_points(
                problem, points, worker_count, chunk=currents.size,
                progress=progress, executor=executor)
    if evaluations is None:
        evaluations = evaluator.evaluate_many(points)
    for flat, evaluation in enumerate(evaluations):
        if evaluation.runaway:
            continue
        i, j = divmod(flat, currents.size)
        temperature[i, j] = evaluation.max_chip_temperature
        power[i, j] = evaluation.total_power
        feasible[i, j] = evaluation.feasible
    return SurfaceSweep(
        omegas=omegas, currents=currents,
        temperature=temperature, power=power, feasible=feasible,
        problem_name=problem.name)
