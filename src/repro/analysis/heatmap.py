"""ASCII heat maps of die temperature fields.

The library is deliberately plot-free; this renderer makes temperature
fields readable in a terminal: a character ramp over the chip grid, an
optional floorplan-unit overlay, and a side-by-side delta view for
before/after comparisons (e.g. TEC off vs on).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..geometry import CellCoverage, Grid
from ..leakage import CellLeakageModel
from ..thermal import (
    PackageThermalModel,
    SteadyStateResult,
    solve_steady_state_batch,
)
from ..units import kelvin_to_celsius

#: Character ramp from coolest to hottest.
_RAMP = " .:-=+*#%@"


def _normalize(field: np.ndarray, vmin: Optional[float],
               vmax: Optional[float]) -> np.ndarray:
    lo = field.min() if vmin is None else vmin
    hi = field.max() if vmax is None else vmax
    if hi <= lo:
        return np.zeros_like(field)
    return np.clip((field - lo) / (hi - lo), 0.0, 1.0)


def render_heatmap(
    field: np.ndarray,
    grid: Grid,
    title: str = "",
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> str:
    """Render a per-cell field as an ASCII heat map.

    Rows print north-to-south (the top row is the grid's highest y),
    matching how floorplans are usually drawn.  ``vmin``/``vmax`` pin
    the ramp (for comparable side-by-side maps).
    """
    values = np.asarray(field, dtype=float)
    if values.shape != (grid.cell_count,):
        raise ConfigurationError(
            f"Field must have {grid.cell_count} entries, got "
            f"{values.shape}")
    normalized = _normalize(values, vmin, vmax)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"range {kelvin_to_celsius(values.min()):.1f} .. "
        f"{kelvin_to_celsius(values.max()):.1f} C  "
        f"(ramp '{_RAMP}')")
    for iy in reversed(range(grid.ny)):
        row_chars = []
        for ix in range(grid.nx):
            level = normalized[grid.flat_index(ix, iy)]
            index = min(int(level * len(_RAMP)), len(_RAMP) - 1)
            row_chars.append(_RAMP[index] * 2)  # 2:1 aspect correction
        lines.append("".join(row_chars))
    return "\n".join(lines)


def temperature_fields(
    model: PackageThermalModel,
    points: Sequence[Tuple[float, float]],
    dynamic_cell_power: np.ndarray,
    leakage: Optional[CellLeakageModel] = None,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> List[Optional[np.ndarray]]:
    """Chip-temperature fields at many ``(omega, current)`` points.

    The bulk producer for side-by-side heat maps (TEC off vs on, a fan
    ladder, ...): all points are dispatched through the operator layer's
    batched solve, so leakage-free comparisons sharing an operating
    point factor once and back-substitute per map.  Entries are per-cell
    chip temperatures in K, or ``None`` where the point ran away.

    ``workers`` fans point chunks across worker processes via
    ``repro.exec`` (None defers to ``REPRO_WORKERS``; 0 stays
    in-process); fields are identical across worker counts.
    ``executor`` picks the fan-out backend (``"process"``,
    ``"thread"``, ``"serial"``; None defers to ``REPRO_EXECUTOR``).
    """
    from ..exec import resolve_workers, solve_fields
    worker_count = resolve_workers(workers)
    if worker_count >= 1 and len(points) > 1:
        return solve_fields(model, points, dynamic_cell_power,
                            leakage, worker_count, executor=executor)
    outcomes = solve_steady_state_batch(
        model, points, dynamic_cell_power, leakage=leakage)
    return [outcome.chip_temperatures
            if isinstance(outcome, SteadyStateResult) else None
            for outcome in outcomes]


def render_unit_overlay(coverage: CellCoverage) -> str:
    """Render which unit owns each cell (first letters), for orientation."""
    grid = coverage.grid
    dominant = coverage.dominant_unit_per_cell()
    lines = ["unit overlay:"]
    for iy in reversed(range(grid.ny)):
        row = []
        for ix in range(grid.nx):
            name = dominant[grid.flat_index(ix, iy)]
            row.append((name[:2] if name else "..").ljust(2))
        lines.append("".join(row))
    return "\n".join(lines)


def render_delta_map(
    before: np.ndarray,
    after: np.ndarray,
    grid: Grid,
    title: str = "delta (after - before)",
) -> str:
    """Render a signed difference field: '-' cooling, '+' heating.

    Characters scale with magnitude: ``.`` below 0.5 K, then one symbol
    per 2 K up to three.
    """
    before_arr = np.asarray(before, dtype=float)
    after_arr = np.asarray(after, dtype=float)
    for name, arr in (("before", before_arr), ("after", after_arr)):
        if arr.shape != (grid.cell_count,):
            raise ConfigurationError(
                f"{name} must have {grid.cell_count} entries, got "
                f"{arr.shape}")
    delta = after_arr - before_arr
    lines = [title,
             f"range {delta.min():+.1f} .. {delta.max():+.1f} K"]
    for iy in reversed(range(grid.ny)):
        row = []
        for ix in range(grid.nx):
            value = delta[grid.flat_index(ix, iy)]
            magnitude = min(int(abs(value) / 2.0) + 1, 3)
            if abs(value) < 0.5:
                cell = ". "
            else:
                symbol = "-" if value < 0.0 else "+"
                cell = (symbol * magnitude).ljust(2)
            row.append(cell)
        lines.append("".join(row))
    return "\n".join(lines)
