"""The full experimental campaign behind Figures 6(c)-(f) and Table 2.

For every benchmark the campaign runs three cooling methods — OFTEC, the
variable-omega baseline, and the fixed-omega baseline — through both
optimization objectives:

* **Optimization 2** (minimize the maximum die temperature): Figure 6(c)
  temperatures and Figure 6(d) powers.
* **Optimization 1** (minimize 𝒫 subject to 𝒯 < T_max): Figure 6(e)
  temperatures and Figure 6(f) powers, plus Table 2's ``(I*, omega*)``.

Optionally the TEC-only system is swept as well (the Section 6.2 thermal
runaway demonstration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..core import (
    BaselineResult,
    CoolingProblem,
    Evaluator,
    OFTECResult,
    OptimizationOutcome,
    minimize_temperature,
    run_fixed_fan_baseline,
    run_oftec,
    run_tec_only,
    run_variable_fan_baseline,
)
from ..errors import ConfigurationError
from ..power import BenchmarkProfile


@dataclass
class BenchmarkComparison:
    """All methods' results on one benchmark.

    Attributes:
        name: Benchmark name.
        oftec_opt1: Algorithm 1 outcome (Optimization 1 operating point).
        oftec_opt2: Full Optimization 2 run on the TEC system.
        variable_opt1: Variable-omega baseline at its Optimization 1 point.
        variable_opt2: Variable-omega baseline minimizing temperature.
        fixed: Fixed-omega baseline (same point for both objectives).
        tec_only: Optional TEC-only sweep result.
    """

    name: str
    oftec_opt1: OFTECResult
    oftec_opt2: OptimizationOutcome
    variable_opt1: BaselineResult
    variable_opt2: OptimizationOutcome
    fixed: BaselineResult
    tec_only: Optional[BaselineResult] = None


@dataclass
class CampaignResult:
    """Campaign over a set of benchmarks.

    Attributes:
        comparisons: Per-benchmark method comparison, in run order.
        t_max: The thermal threshold used, K.
        wall_seconds: Total campaign wall-clock time.
    """

    comparisons: List[BenchmarkComparison] = field(default_factory=list)
    t_max: float = 0.0
    wall_seconds: float = 0.0

    def __getitem__(self, name: str) -> BenchmarkComparison:
        for comparison in self.comparisons:
            if comparison.name == name:
                return comparison
        raise ConfigurationError(f"No benchmark named {name!r}")

    @property
    def benchmark_names(self) -> List[str]:
        """Benchmarks in run order."""
        return [c.name for c in self.comparisons]

    # -- the paper's headline aggregates ------------------------------------

    def feasibility_counts(self) -> Dict[str, int]:
        """Benchmarks meeting T_max per method (Optimization 1 points)."""
        return {
            "oftec": sum(c.oftec_opt1.feasible for c in self.comparisons),
            "variable-omega": sum(c.variable_opt1.feasible
                                  for c in self.comparisons),
            "fixed-omega": sum(c.fixed.feasible for c in self.comparisons),
        }

    def comparable_benchmarks(self) -> List[str]:
        """Benchmarks where *all three* methods meet the constraint.

        The paper reports power/temperature deltas only on these (three
        of its eight).
        """
        return [c.name for c in self.comparisons
                if (c.oftec_opt1.feasible and c.variable_opt1.feasible
                    and c.fixed.feasible)]

    def average_power_saving(self, versus: str = "variable-omega",
                             ) -> float:
        """Mean relative 𝒫 saving of OFTEC on comparable benchmarks.

        Positive values mean OFTEC uses less power.  ``versus`` selects
        the baseline ("variable-omega" or "fixed-omega").
        """
        savings = []
        for name in self.comparable_benchmarks():
            comparison = self[name]
            ours = comparison.oftec_opt1.total_power
            theirs = (comparison.variable_opt1.total_power
                      if versus == "variable-omega"
                      else comparison.fixed.total_power)
            savings.append((theirs - ours) / theirs)
        if not savings:
            raise ConfigurationError(
                "No comparable benchmarks; cannot average savings")
        return sum(savings) / len(savings)

    def average_temperature_delta(self, versus: str = "variable-omega",
                                  ) -> float:
        """Mean 𝒯 advantage (K, positive = OFTEC cooler) on comparable
        benchmarks at the Optimization 1 points."""
        deltas = []
        for name in self.comparable_benchmarks():
            comparison = self[name]
            theirs = (comparison.variable_opt1.max_chip_temperature
                      if versus == "variable-omega"
                      else comparison.fixed.max_chip_temperature)
            deltas.append(theirs - comparison.oftec_opt1
                          .max_chip_temperature)
        if not deltas:
            raise ConfigurationError(
                "No comparable benchmarks; cannot average deltas")
        return sum(deltas) / len(deltas)

    def average_opt2_temperature_advantage(self) -> float:
        """Mean 𝒯 advantage of OFTEC over the better baseline after
        Optimization 2, K (the paper's "more than 13 C" claim)."""
        deltas = []
        for comparison in self.comparisons:
            baseline_best = min(
                comparison.variable_opt2.evaluation.max_chip_temperature,
                comparison.fixed.max_chip_temperature)
            deltas.append(baseline_best - comparison.oftec_opt2
                          .evaluation.max_chip_temperature)
        return sum(deltas) / len(deltas)

    def average_oftec_runtime(self) -> float:
        """Mean Algorithm 1 wall-clock runtime, s (Table 2's last column)."""
        runtimes = [c.oftec_opt1.runtime_seconds for c in self.comparisons]
        return sum(runtimes) / len(runtimes)


def run_campaign(
    profiles: Mapping[str, BenchmarkProfile],
    tec_problem_template: CoolingProblem,
    baseline_problem_template: CoolingProblem,
    method: str = "slsqp",
    include_tec_only: bool = False,
) -> CampaignResult:
    """Run the three-method comparison over a set of benchmark profiles.

    Args:
        profiles: Benchmark name -> power profile.
        tec_problem_template: A TEC-equipped problem carrying a coverage
            (retargeted per profile via :meth:`CoolingProblem.with_profile`).
        baseline_problem_template: The matching no-TEC problem.
        method: Solver backend for all optimizations.
        include_tec_only: Also sweep the fan-less TEC-only system.
    """
    if not tec_problem_template.has_tec:
        raise ConfigurationError(
            "tec_problem_template must include a TEC array")
    if baseline_problem_template.has_tec:
        raise ConfigurationError(
            "baseline_problem_template must not include a TEC array")
    start = time.perf_counter()
    result = CampaignResult(t_max=tec_problem_template.limits.t_max)
    for name, profile in profiles.items():
        tec_problem = tec_problem_template.with_profile(profile, name=name)
        base_problem = baseline_problem_template.with_profile(profile,
                                                              name=name)
        oftec_opt1 = run_oftec(tec_problem, method=method)
        oftec_opt2 = minimize_temperature(Evaluator(tec_problem),
                                          method=method)
        variable_opt1 = run_variable_fan_baseline(base_problem,
                                                  method=method)
        variable_opt2 = minimize_temperature(Evaluator(base_problem),
                                             method=method)
        fixed = run_fixed_fan_baseline(base_problem)
        tec_only = run_tec_only(tec_problem) if include_tec_only else None
        result.comparisons.append(BenchmarkComparison(
            name=name,
            oftec_opt1=oftec_opt1,
            oftec_opt2=oftec_opt2,
            variable_opt1=variable_opt1,
            variable_opt2=variable_opt2,
            fixed=fixed,
            tec_only=tec_only))
    result.wall_seconds = time.perf_counter() - start
    return result
