"""The full experimental campaign behind Figures 6(c)-(f) and Table 2.

For every benchmark the campaign runs three cooling methods — OFTEC, the
variable-omega baseline, and the fixed-omega baseline — through both
optimization objectives:

* **Optimization 2** (minimize the maximum die temperature): Figure 6(c)
  temperatures and Figure 6(d) powers.
* **Optimization 1** (minimize 𝒫 subject to 𝒯 < T_max): Figure 6(e)
  temperatures and Figure 6(f) powers, plus Table 2's ``(I*, omega*)``.

Optionally the TEC-only system is swept as well (the Section 6.2 thermal
runaway demonstration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from ..core import (
    SOLVER_METHODS,
    BaselineResult,
    CoolingProblem,
    Evaluator,
    FailureReport,
    OFTECResult,
    OptimizationOutcome,
    ResiliencePolicy,
    ResilientSolver,
    failure_report_from_exception,
    minimize_temperature,
    run_fixed_fan_baseline,
    run_oftec,
    run_oftec_resilient,
    run_tec_only,
    run_variable_fan_baseline,
)
from ..errors import (
    ConfigurationError,
    ReproError,
    SolverError,
    WorkerCrashError,
)
from ..obs import runtime as _obs
from ..obs.clock import stopwatch
from ..power import BenchmarkProfile


@dataclass
class BenchmarkComparison:
    """All methods' results on one benchmark.

    Attributes:
        name: Benchmark name.
        oftec_opt1: Algorithm 1 outcome (Optimization 1 operating point).
        oftec_opt2: Full Optimization 2 run on the TEC system.
        variable_opt1: Variable-omega baseline at its Optimization 1 point.
        variable_opt2: Variable-omega baseline minimizing temperature.
        fixed: Fixed-omega baseline (same point for both objectives).
        tec_only: Optional TEC-only sweep result.
    """

    name: str
    oftec_opt1: OFTECResult
    oftec_opt2: OptimizationOutcome
    variable_opt1: BaselineResult
    variable_opt2: OptimizationOutcome
    fixed: BaselineResult
    tec_only: Optional[BaselineResult] = None


@dataclass
class CampaignResult:
    """Campaign over a set of benchmarks.

    Attributes:
        comparisons: Per-benchmark method comparison, in run order.
        t_max: The thermal threshold used, K.
        wall_seconds: Total campaign wall-clock time.
        failures: Structured post-mortems of benchmarks (or stages)
            that failed; such benchmarks are omitted from
            ``comparisons`` but do not sink the campaign.
        quarantined: Supervised runs only — units that exhausted their
            retry budget (:class:`repro.exec.QuarantinedUnit` entries,
            with per-attempt post-mortems).  The campaign *completes*
            around them; the JSON carries them in a ``quarantined``
            section.
    """

    comparisons: List[BenchmarkComparison] = field(default_factory=list)
    t_max: float = 0.0
    wall_seconds: float = 0.0
    failures: List[FailureReport] = field(default_factory=list)
    quarantined: List[object] = field(default_factory=list)
    #: Per-worker cache-locality statistics of a parallel run (see
    #: :func:`repro.exec.worker_statistics`); empty for serial runs.
    #: Never serialized — result JSON stays identical across worker
    #: counts.  Supervised runs add a ``"supervision"`` block
    #: (retries, replacements, circuit state).
    worker_stats: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, name: str) -> BenchmarkComparison:
        for comparison in self.comparisons:
            if comparison.name == name:
                return comparison
        raise ConfigurationError(f"No benchmark named {name!r}")

    @property
    def benchmark_names(self) -> List[str]:
        """Benchmarks in run order."""
        return [c.name for c in self.comparisons]

    # -- the paper's headline aggregates ------------------------------------

    def feasibility_counts(self) -> Dict[str, int]:
        """Benchmarks meeting T_max per method (Optimization 1 points)."""
        return {
            "oftec": sum(c.oftec_opt1.feasible for c in self.comparisons),
            "variable-omega": sum(c.variable_opt1.feasible
                                  for c in self.comparisons),
            "fixed-omega": sum(c.fixed.feasible for c in self.comparisons),
        }

    def comparable_benchmarks(self) -> List[str]:
        """Benchmarks where *all three* methods meet the constraint.

        The paper reports power/temperature deltas only on these (three
        of its eight).
        """
        return [c.name for c in self.comparisons
                if (c.oftec_opt1.feasible and c.variable_opt1.feasible
                    and c.fixed.feasible)]

    def average_power_saving(self, versus: str = "variable-omega",
                             ) -> float:
        """Mean relative 𝒫 saving of OFTEC on comparable benchmarks.

        Positive values mean OFTEC uses less power.  ``versus`` selects
        the baseline ("variable-omega" or "fixed-omega").
        """
        savings = []
        for name in self.comparable_benchmarks():
            comparison = self[name]
            ours = comparison.oftec_opt1.total_power
            theirs = (comparison.variable_opt1.total_power
                      if versus == "variable-omega"
                      else comparison.fixed.total_power)
            savings.append((theirs - ours) / theirs)
        if not savings:
            raise ConfigurationError(
                "No comparable benchmarks; cannot average savings")
        return sum(savings) / len(savings)

    def average_temperature_delta(self, versus: str = "variable-omega",
                                  ) -> float:
        """Mean 𝒯 advantage (K, positive = OFTEC cooler) on comparable
        benchmarks at the Optimization 1 points."""
        deltas = []
        for name in self.comparable_benchmarks():
            comparison = self[name]
            theirs = (comparison.variable_opt1.max_chip_temperature
                      if versus == "variable-omega"
                      else comparison.fixed.max_chip_temperature)
            deltas.append(theirs - comparison.oftec_opt1
                          .max_chip_temperature)
        if not deltas:
            raise ConfigurationError(
                "No comparable benchmarks; cannot average deltas")
        return sum(deltas) / len(deltas)

    def average_opt2_temperature_advantage(self) -> float:
        """Mean 𝒯 advantage of OFTEC over the better baseline after
        Optimization 2, K (the paper's "more than 13 C" claim)."""
        deltas = []
        for comparison in self.comparisons:
            baseline_best = min(
                comparison.variable_opt2.evaluation.max_chip_temperature,
                comparison.fixed.max_chip_temperature)
            deltas.append(baseline_best - comparison.oftec_opt2
                          .evaluation.max_chip_temperature)
        return sum(deltas) / len(deltas)

    def average_oftec_runtime(self) -> float:
        """Mean Algorithm 1 wall-clock runtime, s (Table 2's last column)."""
        runtimes = [c.oftec_opt1.runtime_seconds for c in self.comparisons]
        return sum(runtimes) / len(runtimes)


#: Serial order of the per-benchmark pipeline stages.  The parallel
#: engine decomposes a benchmark into one work unit per stage using
#: exactly these labels; merge walks them in this order to reproduce
#: the serial loop's skip semantics (a failed stage means later stages
#: never ran).
CAMPAIGN_STAGES = (
    "oftec-opt1",
    "oftec-opt2",
    "variable-opt1",
    "variable-opt2",
    "fixed-omega",
    "tec-only",
)


class _StageFailure(Exception):
    """Internal wrapper tagging a ReproError with its pipeline stage."""

    def __init__(self, stage: str, error: ReproError):
        super().__init__(stage)
        self.stage = stage
        self.error = error


def _staged(stage: str, thunk: Callable):
    """Run one pipeline stage, tagging any library error with ``stage``."""
    try:
        # The stage span sits inside the try so a failing stage is
        # recorded on its own span before the campaign isolator wraps it.
        with _obs.span("stage", stage):
            return thunk()
    except ReproError as exc:
        raise _StageFailure(stage, exc) from exc


def _stage_specs(
    name: str,
    tec_problem: CoolingProblem,
    base_problem: CoolingProblem,
    method: str,
    make: Callable[[CoolingProblem], Evaluator],
    resilient: bool,
    policy: Optional[ResiliencePolicy],
    failures: List[FailureReport],
    jac: str = "analytic",
) -> Dict[str, Callable]:
    """Zero-argument thunks for every pipeline stage of one benchmark.

    Each thunk builds its own fresh evaluator via ``make``, so a stage
    behaves identically whether it runs inline in ``_run_benchmark`` or
    as a standalone work unit on a worker — the basis of the parallel
    engine's stage-level decomposition staying bit-identical to serial.
    """
    if resilient:
        def oftec_stage() -> OFTECResult:
            outcome = run_oftec_resilient(
                tec_problem, policy=policy,
                evaluator=make(tec_problem), jac=jac)
            failures.extend(outcome.failures)
            if outcome.result is None:
                raise SolverError(
                    f"{name}: every resilient OFTEC stage failed")
            return outcome.result

        def opt2_stage() -> OptimizationOutcome:
            solve = ResilientSolver(make(tec_problem), policy,
                                    jac=jac).minimize_temperature()
            if solve.failure is not None:
                failures.append(solve.failure)
            if solve.outcome is None:
                raise SolverError(
                    f"{name}: Optimization 2 failed on every ladder "
                    "rung")
            return solve.outcome
    else:
        def oftec_stage() -> OFTECResult:
            return run_oftec(tec_problem, method=method,
                             evaluator=make(tec_problem), jac=jac)

        def opt2_stage() -> OptimizationOutcome:
            return minimize_temperature(make(tec_problem),
                                        method=method, jac=jac)
    return {
        "oftec-opt1": oftec_stage,
        "oftec-opt2": opt2_stage,
        "variable-opt1": lambda: run_variable_fan_baseline(
            base_problem, method=method,
            evaluator=make(base_problem), jac=jac),
        "variable-opt2": lambda: minimize_temperature(
            make(base_problem), method=method, jac=jac),
        "fixed-omega": lambda: run_fixed_fan_baseline(
            base_problem, evaluator=make(base_problem)),
        "tec-only": lambda: run_tec_only(
            tec_problem, evaluator=make(tec_problem)),
    }


def run_campaign_stage(
    stage: str,
    name: str,
    tec_problem: CoolingProblem,
    base_problem: CoolingProblem,
    method: str,
    make: Callable[[CoolingProblem], Evaluator],
    resilient: bool,
    policy: Optional[ResiliencePolicy],
    failures: List[FailureReport],
    jac: str = "analytic",
):
    """Run exactly one pipeline stage of one benchmark.

    The stage-level work-unit entry point: same thunk, same span, same
    :class:`_StageFailure` tagging as the inline pipeline.
    """
    specs = _stage_specs(name, tec_problem, base_problem, method, make,
                         resilient, policy, failures, jac=jac)
    if stage not in specs:
        raise ConfigurationError(f"Unknown campaign stage {stage!r}")
    return _staged(stage, specs[stage])


def _run_benchmark(
    name: str,
    tec_problem: CoolingProblem,
    base_problem: CoolingProblem,
    method: str,
    include_tec_only: bool,
    make: Callable[[CoolingProblem], Evaluator],
    resilient: bool,
    policy: Optional[ResiliencePolicy],
    failures: List[FailureReport],
    jac: str = "analytic",
) -> BenchmarkComparison:
    """All methods on one benchmark, each stage individually tagged."""
    specs = _stage_specs(name, tec_problem, base_problem, method, make,
                         resilient, policy, failures, jac=jac)
    values: Dict[str, object] = {}
    for stage in CAMPAIGN_STAGES:
        if stage == "tec-only" and not include_tec_only:
            values[stage] = None
            continue
        values[stage] = _staged(stage, specs[stage])
    return BenchmarkComparison(
        name=name,
        oftec_opt1=values["oftec-opt1"],
        oftec_opt2=values["oftec-opt2"],
        variable_opt1=values["variable-opt1"],
        variable_opt2=values["variable-opt2"],
        fixed=values["fixed-omega"],
        tec_only=values["tec-only"])


def run_campaign(
    profiles: Mapping[str, BenchmarkProfile],
    tec_problem_template: CoolingProblem,
    baseline_problem_template: CoolingProblem,
    method: str = "slsqp",
    include_tec_only: bool = False,
    isolate_failures: bool = True,
    evaluator_factory: Optional[Callable[[CoolingProblem],
                                         Evaluator]] = None,
    resilient: bool = False,
    policy: Optional[ResiliencePolicy] = None,
    workers: Optional[int] = None,
    supervision: Optional[object] = None,
    journal_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    jac: str = "analytic",
    progress: Optional[object] = None,
    executor: Optional[str] = None,
    pool: Optional[object] = None,
) -> CampaignResult:
    """Run the three-method comparison over a set of benchmark profiles.

    Args:
        profiles: Benchmark name -> power profile.
        tec_problem_template: A TEC-equipped problem carrying a coverage
            (retargeted per profile via :meth:`CoolingProblem.with_profile`).
        baseline_problem_template: The matching no-TEC problem.
        method: Solver backend for all optimizations.
        include_tec_only: Also sweep the fan-less TEC-only system.
        isolate_failures: Contain each benchmark/stage failure as a
            :class:`~repro.core.FailureReport` on the campaign result
            instead of letting it abort the run.  Template
            misconfigurations always raise — they would fail every
            benchmark identically.
        evaluator_factory: Override how per-problem evaluators are
            built (the fault-injection hook; defaults to
            :class:`~repro.core.Evaluator`).
        resilient: Route the OFTEC stages through the
            :class:`~repro.core.ResilientSolver` fallback ladder.
        policy: Resilience policy for ``resilient=True`` (default: the
            ladder led by ``method``).
        workers: Worker-process count for the parallel engine
            (``repro.exec``): None defers to ``REPRO_WORKERS`` (then
            serial), 0 forces the classic serial loop, 1 runs the
            decomposed units in-process, N > 1 shards benchmarks
            across N processes.  Parallel output is bit-identical to
            serial.  Incompatible with ``evaluator_factory`` (a live
            factory cannot cross process boundaries; chaos runs use
            :func:`repro.faults.run_chaos_campaign`'s own parallel
            path).  Error surfacing differs from serial in one way:
            exception objects do not cross the process boundary, so
            where the serial loop re-raises the original exception
            (with its traceback), the parallel path raises
            :class:`~repro.errors.SolverError` for library failures
            and :class:`~repro.errors.WorkerCrashError` listing every
            unhandled worker exception as ``"Type: message"`` text
            (with the failing unit labels and attempt counts on
            ``.units``).
        supervision: A :class:`repro.exec.SupervisionPolicy` routing
            the benchmarks through the supervised executor: worker
            death/hangs become retries, poison units quarantine, and
            the campaign completes instead of raising.  Forces the
            decomposed path (``workers`` floors at 1).
        journal_path: Write an append-only crash-consistent journal of
            completed units to this path (fresh file; see
            :mod:`repro.exec.journal`).  Implies supervision.
        resume_from: Resume from an existing journal: completed units
            are loaded and skipped, new completions are appended to
            the same file, and the merged result — its canonical JSON
            in particular — is bit-identical to an uninterrupted run.
            Mutually exclusive with ``journal_path``.
        jac: Gradient mode for every optimization stage
            (:data:`repro.core.JAC_MODES`): ``"analytic"`` (default)
            drives the solvers with adjoint gradients, ``"fd"`` is the
            campaign-wide escape hatch restoring backend finite
            differencing.
        progress: A :class:`repro.obs.ProgressBoard` (or anything with
            its hook methods) fed the benchmark lifecycle — serial,
            pooled, and supervised paths alike — plus live metric
            snapshots on the supervised path.
        executor: Parallel backend (:data:`repro.exec.EXECUTORS`):
            ``"process"`` (default) forks worker processes,
            ``"thread"`` runs units on an in-process thread pool
            sharing one operator cache (the GIL-releasing SuperLU/BLAS
            hot path), ``"serial"`` forces the decomposed in-process
            loop.  None defers to ``REPRO_EXECUTOR``.
        pool: A warm :class:`repro.exec.WorkerPool` to run units on
            instead of a fresh one-shot process pool; worker-side
            caches stay hot across successive campaigns on the same
            pool.
    """
    if not tec_problem_template.has_tec:
        raise ConfigurationError(
            "tec_problem_template must include a TEC array")
    if baseline_problem_template.has_tec:
        raise ConfigurationError(
            "baseline_problem_template must not include a TEC array")
    if resilient and policy is None:
        policy = ResiliencePolicy(ladder=(method,) + tuple(
            m for m in SOLVER_METHODS if m != method))
    if journal_path is not None and resume_from is not None:
        raise ConfigurationError(
            "journal_path (fresh journal) and resume_from (continue "
            "one) are mutually exclusive")
    supervised = supervision is not None or journal_path is not None \
        or resume_from is not None
    worker_count = 0
    if evaluator_factory is None:
        from ..exec import resolve_workers
        worker_count = resolve_workers(workers)
    elif workers:
        raise ConfigurationError(
            "workers cannot be combined with evaluator_factory (the "
            "factory closure cannot cross a process boundary)")
    elif supervised:
        raise ConfigurationError(
            "supervision/journal/resume cannot be combined with "
            "evaluator_factory (the factory closure cannot cross a "
            "process boundary)")
    if supervised and worker_count < 1:
        # Journaling and resume need the decomposed per-unit path;
        # one in-process worker preserves serial bit-identity.
        worker_count = 1
    if worker_count < 1 and pool is not None:
        worker_count = max(1, pool.workers)
    if worker_count >= 1:
        return _run_campaign_parallel(
            profiles, tec_problem_template, baseline_problem_template,
            method, include_tec_only, isolate_failures, resilient,
            policy, worker_count, supervision, journal_path,
            resume_from, jac=jac, progress=progress,
            executor=executor, pool=pool)
    make = evaluator_factory or Evaluator
    watch = stopwatch("campaign.wall_seconds")
    if progress is not None:
        progress.begin(len(profiles))
    with watch, _obs.span("campaign", benchmarks=len(profiles)):
        result = CampaignResult(
            t_max=tec_problem_template.limits.t_max)
        for name, profile in profiles.items():
            tec_problem = tec_problem_template.with_profile(profile,
                                                            name=name)
            base_problem = baseline_problem_template.with_profile(
                profile, name=name)
            if progress is not None:
                progress.unit_running(name)
            bench_watch = stopwatch("campaign.benchmark_seconds")
            try:
                with _obs.span("benchmark", name), bench_watch:
                    comparison = _run_benchmark(
                        name, tec_problem, base_problem, method,
                        include_tec_only, make, resilient, policy,
                        result.failures, jac=jac)
            except _StageFailure as failure:
                if progress is not None:
                    progress.unit_done(name, bench_watch.elapsed,
                                       ok=False)
                if not isolate_failures:
                    raise failure.error
                result.failures.append(failure_report_from_exception(
                    name, failure.stage, failure.error))
                continue
            if progress is not None:
                progress.unit_done(name, bench_watch.elapsed)
            result.comparisons.append(comparison)
    result.wall_seconds = watch.elapsed
    return result


def _run_campaign_parallel(
    profiles: Mapping[str, BenchmarkProfile],
    tec_problem_template: CoolingProblem,
    baseline_problem_template: CoolingProblem,
    method: str,
    include_tec_only: bool,
    isolate_failures: bool,
    resilient: bool,
    policy: Optional[ResiliencePolicy],
    workers: int,
    supervision: Optional[object] = None,
    journal_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    jac: str = "analytic",
    progress: Optional[object] = None,
    executor: Optional[str] = None,
    pool: Optional[object] = None,
) -> CampaignResult:
    """The decomposed campaign path: stage- or benchmark-level units.

    Merging happens in submission order and each unit reproduces the
    serial per-benchmark pipeline exactly (same stages, same fresh
    evaluators, same failure-report ordering), so the returned result
    — and its JSON — is bit-identical to the serial loop's.
    """
    from ..exec import (
        JournalWriter,
        run_campaign_units,
        unit_fingerprint,
    )
    journal = None
    completed = None
    supervised = supervision is not None or journal_path is not None \
        or resume_from is not None
    if journal_path is not None or resume_from is not None:
        fingerprint = unit_fingerprint(
            tuple(profiles),
            f"campaign:{method}:{int(include_tec_only)}:"
            f"{int(resilient)}:{jac}")
        journal = JournalWriter(
            resume_from or journal_path,
            meta={"fingerprint": fingerprint, "job": "campaign"},
            resume=resume_from is not None)
        completed = journal.completed
    watch = stopwatch("campaign.wall_seconds")
    try:
        with watch, _obs.span("campaign", benchmarks=len(profiles),
                              workers=workers):
            merge = run_campaign_units(
                profiles, tec_problem_template,
                baseline_problem_template,
                method=method, include_tec_only=include_tec_only,
                resilient=resilient, policy=policy, fault_plan=None,
                workers=workers,
                supervision=supervision if supervised else None,
                journal=journal, completed=completed, jac=jac,
                progress=progress, executor=executor, pool=pool)
            if merge.unhandled:
                # A non-library exception in a worker is a bug, not a
                # result; surface every entry instead of a silent hole
                # in the comparisons.
                detail = "; ".join(
                    f"{name} (attempt {attempts}): {line}"
                    for name, attempts, line in merge.crashed) \
                    or "; ".join(merge.unhandled)
                raise WorkerCrashError(
                    f"{len(merge.unhandled)} unhandled worker "
                    f"exception(s): " + detail,
                    reports=merge.unhandled,
                    units=[(name, attempts)
                           for name, attempts, _ in merge.crashed])
            if merge.errors and not isolate_failures:
                name, stage, error_type, message = merge.errors[0]
                raise SolverError(
                    f"{name} [{stage}] {error_type}: {message}")
            result = CampaignResult(
                comparisons=merge.comparisons,
                t_max=tec_problem_template.limits.t_max,
                failures=merge.failures,
                quarantined=list(merge.quarantined),
                worker_stats=merge.worker_stats)
    finally:
        if journal is not None:
            journal.close()
    result.wall_seconds = watch.elapsed
    return result
