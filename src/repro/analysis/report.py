"""Text-table rendering of campaign and sweep results.

The library deliberately carries no plotting dependency; these renderers
produce the same rows/series the paper's figures and tables report, as
aligned monospace text suitable for terminals and logs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..units import kelvin_to_celsius, rad_s_to_rpm, s_to_ms
from .campaign import CampaignResult
from .sweep import SurfaceSweep


def _fmt_temp(kelvin: float) -> str:
    if not np.isfinite(kelvin):
        return "runaway"
    return f"{kelvin_to_celsius(kelvin):7.1f}"


def _fmt_power(watts: float) -> str:
    if not np.isfinite(watts):
        return "runaway"
    return f"{watts:7.2f}"


def format_comparison_table(campaign: CampaignResult,
                            objective: str = "opt1") -> str:
    """Render Figure 6(c)/(d) (``objective="opt2"``) or 6(e)/(f)
    (``objective="opt1"``) as one combined text table."""
    if objective not in ("opt1", "opt2"):
        raise ConfigurationError(f"objective must be 'opt1' or 'opt2', got "
                         f"{objective!r}")
    t_max_c = kelvin_to_celsius(campaign.t_max)
    title = ("Optimization 1 (min cooling power, T < T_max)"
             if objective == "opt1"
             else "Optimization 2 (min max die temperature)")
    lines = [
        title,
        f"T_max = {t_max_c:.1f} C",
        f"{'benchmark':<14}{'method':<16}{'T_max(C)':>10}"
        f"{'P(W)':>9}{'omega(RPM)':>12}{'I_TEC(A)':>10}{'meets':>7}",
        "-" * 78,
    ]
    for comparison in campaign.comparisons:
        if objective == "opt1":
            rows = [
                ("OFTEC", comparison.oftec_opt1.evaluation),
                ("variable-omega", comparison.variable_opt1.evaluation),
                ("fixed-omega", comparison.fixed.evaluation),
            ]
        else:
            rows = [
                ("OFTEC", comparison.oftec_opt2.evaluation),
                ("variable-omega", comparison.variable_opt2.evaluation),
                ("fixed-omega", comparison.fixed.evaluation),
            ]
        for method, evaluation in rows:
            meets = "yes" if (not evaluation.runaway
                              and evaluation.max_chip_temperature
                              < campaign.t_max) else "NO"
            lines.append(
                f"{comparison.name:<14}{method:<16}"
                f"{_fmt_temp(evaluation.max_chip_temperature):>10}"
                f"{_fmt_power(evaluation.total_power):>9}"
                f"{rad_s_to_rpm(evaluation.omega):>12.0f}"
                f"{evaluation.current:>10.2f}{meets:>7}")
        lines.append("-" * 78)
    counts = campaign.feasibility_counts()
    total = len(campaign.comparisons)
    lines.append(
        f"thermal constraint met: OFTEC {counts['oftec']}/{total}, "
        f"variable-omega {counts['variable-omega']}/{total}, "
        f"fixed-omega {counts['fixed-omega']}/{total}")
    if objective == "opt1" and campaign.comparable_benchmarks():
        save_var = campaign.average_power_saving("variable-omega") * 100
        save_fix = campaign.average_power_saving("fixed-omega") * 100
        dt_var = campaign.average_temperature_delta("variable-omega")
        dt_fix = campaign.average_temperature_delta("fixed-omega")
        lines.append(
            f"comparable benchmarks {campaign.comparable_benchmarks()}: "
            f"OFTEC saves {save_var:.1f}% vs variable-omega "
            f"({dt_var:.1f} C cooler), {save_fix:.1f}% vs fixed-omega "
            f"({dt_fix:.1f} C cooler)")
    return "\n".join(lines)


def format_table2(campaign: CampaignResult) -> str:
    """Render the Table 2 analogue: per-benchmark (I*, omega*, runtime)."""
    lines = [
        "Table 2: OFTEC results",
        f"{'benchmark':<14}{'I*_TEC (A)':>11}{'omega* (RPM)':>14}"
        f"{'runtime (ms)':>14}",
        "-" * 53,
    ]
    for comparison in campaign.comparisons:
        result = comparison.oftec_opt1
        lines.append(
            f"{comparison.name:<14}{result.current_star:>11.2f}"
            f"{rad_s_to_rpm(result.omega_star):>14.0f}"
            f"{s_to_ms(result.runtime_seconds):>14.0f}")
    lines.append("-" * 53)
    lines.append(f"{'average':<14}{'':>11}{'':>14}"
                 f"{s_to_ms(campaign.average_oftec_runtime()):>14.0f}")
    return "\n".join(lines)


def format_pareto(frontier) -> str:
    """Render a :class:`repro.analysis.ParetoFrontier` as a text table."""
    lines = [
        f"{frontier.problem_name}: power/temperature Pareto frontier "
        f"(coolest reachable "
        f"{kelvin_to_celsius(frontier.coolest_temperature):.1f} C)",
        f"{'T_max (C)':>11}{'achieved (C)':>14}{'P (W)':>9}"
        f"{'omega (RPM)':>13}{'I (A)':>8}",
        "-" * 55,
    ]
    for point in frontier.points:
        lines.append(
            f"{kelvin_to_celsius(point.t_max):>11.1f}"
            f"{kelvin_to_celsius(point.achieved_temperature):>14.1f}"
            f"{point.total_power:>9.2f}"
            f"{rad_s_to_rpm(point.omega):>13.0f}"
            f"{point.current:>8.2f}")
    return "\n".join(lines)


def format_cop(analysis) -> str:
    """Render a :class:`repro.analysis.COPAnalysis` summary."""
    omega, current, best = analysis.max_cop_point()
    finite = analysis.cop[np.isfinite(analysis.cop)]
    lines = [
        f"{analysis.problem_name}: system COP over the (omega, I) plane",
        f"max COP = {best:.2f} at {rad_s_to_rpm(omega):.0f} RPM / "
        f"{current:.2f} A",
        f"finite samples: {finite.size} of {analysis.cop.size}; "
        f"median COP {np.median(finite):.2f}",
    ]
    return "\n".join(lines)


def format_surface(sweep: SurfaceSweep, which: str = "temperature",
                   max_cols: Optional[int] = 12) -> str:
    """Render a :class:`SurfaceSweep` as a coarse text heat map.

    ``which`` selects "temperature" (C) or "power" (W).  Runaway cells
    render as ``***`` — the paper's dark-red infinity region.
    """
    if which == "temperature":
        surface = sweep.temperature
        convert = kelvin_to_celsius
        unit = "C"
    elif which == "power":
        surface = sweep.power
        convert = lambda x: x  # noqa: E731 - trivial identity
        unit = "W"
    else:
        raise ConfigurationError(f"which must be 'temperature' or 'power', "
                                 f"got "
                         f"{which!r}")
    col_idx = np.arange(sweep.currents.size)
    if max_cols is not None and sweep.currents.size > max_cols:
        col_idx = np.linspace(0, sweep.currents.size - 1,
                              max_cols).astype(int)
    header_cells = "".join(f"{sweep.currents[j]:>8.2f}" for j in col_idx)
    lines = [
        f"{sweep.problem_name}: {which} surface ({unit}); rows = omega "
        f"(RPM), cols = I_TEC (A); *** = thermal runaway",
        f"{'omega':>9} |" + header_cells,
        "-" * (11 + 8 * len(col_idx)),
    ]
    for i, omega in enumerate(sweep.omegas):
        cells: List[str] = []
        for j in col_idx:
            value = surface[i, j]
            cells.append(f"{'***':>8}" if not np.isfinite(value)
                         else f"{convert(value):>8.1f}")
        lines.append(f"{rad_s_to_rpm(omega):>9.0f} |" + "".join(cells))
    return "\n".join(lines)
