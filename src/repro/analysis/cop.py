"""Coefficient-of-performance analysis of the whole cooling package.

The paper's reference [8] (the authors' own prior work) defines a COP
for the *entire* cooling assembly rather than the bare TEC, and finds
the current maximizing it.  We adopt the analogous definition here:

    COP_sys(omega, I) = heat removed from the chip per second
                        / cooling actuation power
                      = (P_dynamic + P_leakage(omega, I))
                        / (P_TEC + P_fan)

(in steady state, everything the chip generates is removed).  Because
leakage *drops* as cooling improves, the numerator is itself a function
of the operating point — the leakage-aware subtlety that reference [8]
introduces and that a constant-COP model (the paper's critique of its
reference [4]) misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core import CoolingProblem, Evaluator
from ..errors import ConfigurationError
from .sweep import SurfaceSweep, sweep_objective_surfaces


@dataclass
class COPAnalysis:
    """System-COP surface over the (omega, I) plane.

    Attributes:
        omegas: Fan-speed axis, rad/s.
        currents: Current axis, A.
        cop: COP_sys samples (NaN where runaway or zero actuation).
        heat_removed: Numerator samples, W.
        actuation_power: Denominator samples (P_TEC + P_fan), W.
        problem_name: Workload label.
    """

    omegas: np.ndarray
    currents: np.ndarray
    cop: np.ndarray
    heat_removed: np.ndarray
    actuation_power: np.ndarray
    problem_name: str

    def max_cop_point(self) -> Tuple[float, float, float]:
        """``(omega, current, COP)`` of the best sampled point."""
        masked = np.where(np.isfinite(self.cop), self.cop, -np.inf)
        if not np.isfinite(masked).any():
            raise ConfigurationError("No finite COP sample")
        flat = int(np.argmax(masked))
        i, j = np.unravel_index(flat, masked.shape)
        return (float(self.omegas[i]), float(self.currents[j]),
                float(masked[i, j]))

    def cop_at(self, omega: float, current: float) -> float:
        """Nearest-sample COP lookup."""
        i = int(np.argmin(np.abs(self.omegas - omega)))
        j = int(np.argmin(np.abs(self.currents - current)))
        return float(self.cop[i, j])


def analyze_system_cop(
    problem: CoolingProblem,
    omega_points: int = 12,
    current_points: int = 9,
    evaluator: Optional[Evaluator] = None,
    sweep: Optional[SurfaceSweep] = None,
) -> COPAnalysis:
    """Sample COP_sys over the operating plane.

    Reuses a :class:`SurfaceSweep` when provided (the expensive part);
    otherwise sweeps with the given resolution.
    """
    evaluator = evaluator or Evaluator(problem)
    if sweep is None:
        sweep = sweep_objective_surfaces(
            problem, omega_points=omega_points,
            current_points=current_points, evaluator=evaluator)

    shape = (sweep.omegas.size, sweep.currents.size)
    cop = np.full(shape, np.nan)
    heat = np.full(shape, np.nan)
    actuation = np.full(shape, np.nan)
    dynamic = problem.total_dynamic_power
    for i, omega in enumerate(sweep.omegas):
        for j, current in enumerate(sweep.currents):
            evaluation = evaluator.evaluate(float(omega),
                                            float(current))
            if evaluation.runaway:
                continue
            removed = dynamic + evaluation.leakage_power
            act = evaluation.tec_power + evaluation.fan_power
            heat[i, j] = removed
            actuation[i, j] = act
            if act > 1e-9:
                cop[i, j] = removed / act
    return COPAnalysis(
        omegas=sweep.omegas, currents=sweep.currents,
        cop=cop, heat_removed=heat, actuation_power=actuation,
        problem_name=problem.name)
