"""Parameter sensitivity of the OFTEC optimum.

Which physical parameters move the operating point?  This module
perturbs one parameter at a time — TEC figure-of-merit ingredients
(alpha, R, K), the fan power constant, the ambient temperature, the
Equation (9) conductance fit — rebuilds the problem, reruns Algorithm 1,
and reports the relative change in (omega*, I*, 𝒫).  Useful both as an
engineering tool (what to improve first: the paper's Section 1 argues
for better TEC materials) and as a robustness check on the calibrated
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..constants import FAN_POWER_CONSTANT, T_AMBIENT
from ..core import CoolingProblem, OFTECResult, ProblemLimits, \
    build_cooling_problem, run_oftec
from ..errors import ConfigurationError
from ..fan import FanModel, HeatSinkFanConductance
from ..power import BenchmarkProfile
from ..tec import TECDevice, default_tec_device
from ..thermal import PackageModelConfig


@dataclass
class SensitivityEntry:
    """Effect of one parameter perturbation.

    Attributes:
        parameter: Parameter label.
        scale: Multiplier applied to the nominal value.
        result: OFTEC outcome under the perturbation.
        d_power: Relative change of 𝒫 vs nominal.
        d_omega: Relative change of omega* vs nominal.
        d_current: Absolute change of I* vs nominal, A.
    """

    parameter: str
    scale: float
    result: OFTECResult
    d_power: float
    d_omega: float
    d_current: float


@dataclass
class SensitivityReport:
    """Nominal result plus one entry per perturbation."""

    nominal: OFTECResult
    entries: List[SensitivityEntry]

    def by_parameter(self) -> Dict[str, List[SensitivityEntry]]:
        """Entries grouped by parameter label."""
        grouped: Dict[str, List[SensitivityEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.parameter, []).append(entry)
        return grouped

    def most_sensitive_parameter(self) -> str:
        """Parameter with the largest |d𝒫| across its perturbations."""
        if not self.entries:
            raise ConfigurationError("Empty sensitivity report")
        grouped = self.by_parameter()
        return max(grouped, key=lambda name: max(
            abs(e.d_power) for e in grouped[name]))


ProblemFactory = Callable[[float], CoolingProblem]


def _problem_factories(
    profile: BenchmarkProfile,
    grid_resolution: int,
    limits: Optional[ProblemLimits],
) -> Dict[str, ProblemFactory]:
    """One rebuild-with-scale factory per studied parameter."""
    base_device = default_tec_device()

    def with_device(device: TECDevice) -> CoolingProblem:
        return build_cooling_problem(profile, tec_device=device,
                                     grid_resolution=grid_resolution,
                                     limits=limits)

    def seebeck(scale: float) -> CoolingProblem:
        return with_device(TECDevice(
            base_device.seebeck_coefficient * scale,
            base_device.electrical_resistance,
            base_device.thermal_conductance,
            base_device.footprint_area, base_device.max_current))

    def resistance(scale: float) -> CoolingProblem:
        return with_device(TECDevice(
            base_device.seebeck_coefficient,
            base_device.electrical_resistance * scale,
            base_device.thermal_conductance,
            base_device.footprint_area, base_device.max_current))

    def conductance(scale: float) -> CoolingProblem:
        return with_device(TECDevice(
            base_device.seebeck_coefficient,
            base_device.electrical_resistance,
            base_device.thermal_conductance * scale,
            base_device.footprint_area, base_device.max_current))

    def fan_constant(scale: float) -> CoolingProblem:
        return build_cooling_problem(
            profile, grid_resolution=grid_resolution, limits=limits,
            fan=FanModel(power_constant=FAN_POWER_CONSTANT * scale))

    def ambient(scale: float) -> CoolingProblem:
        return build_cooling_problem(
            profile, grid_resolution=grid_resolution, limits=limits,
            model_config=PackageModelConfig(ambient=T_AMBIENT * scale))

    def sink_fit(scale: float) -> CoolingProblem:
        nominal = HeatSinkFanConductance()
        return build_cooling_problem(
            profile, grid_resolution=grid_resolution, limits=limits,
            sink_conductance=HeatSinkFanConductance(
                p=nominal.p * scale, q=nominal.q,
                r=nominal.r * scale,
                g_natural=nominal.g_natural * scale))

    return {
        "tec_seebeck": seebeck,
        "tec_resistance": resistance,
        "tec_conductance": conductance,
        "fan_power_constant": fan_constant,
        "ambient_temperature": ambient,
        "sink_conductance_fit": sink_fit,
    }


def run_sensitivity_study(
    profile: BenchmarkProfile,
    scales: Optional[List[float]] = None,
    parameters: Optional[List[str]] = None,
    grid_resolution: int = 8,
    limits: Optional[ProblemLimits] = None,
    method: str = "slsqp",
) -> SensitivityReport:
    """Perturb parameters one at a time and rerun Algorithm 1.

    Args:
        profile: The workload studied.
        scales: Multipliers applied per parameter (default 0.8 / 1.2;
            ambient uses the same list, so keep scales near 1).
        parameters: Subset of parameter labels to study (default all).
        grid_resolution: Thermal grid resolution for the study.
        limits: Optional bounds override.
        method: Solver backend.
    """
    scales = scales or [0.8, 1.2]
    if any(s <= 0.0 for s in scales):
        raise ConfigurationError("Scales must be positive")
    factories = _problem_factories(profile, grid_resolution, limits)
    if parameters is not None:
        unknown = set(parameters) - set(factories)
        if unknown:
            raise ConfigurationError(
                f"Unknown parameters: {sorted(unknown)}; choose from "
                f"{sorted(factories)}")
        factories = {name: factories[name] for name in parameters}

    nominal_problem = build_cooling_problem(
        profile, grid_resolution=grid_resolution, limits=limits)
    nominal = run_oftec(nominal_problem, method=method)

    entries: List[SensitivityEntry] = []
    for name, factory in factories.items():
        for scale in scales:
            result = run_oftec(factory(scale), method=method)
            entries.append(SensitivityEntry(
                parameter=name,
                scale=scale,
                result=result,
                d_power=(result.total_power - nominal.total_power)
                / nominal.total_power,
                d_omega=(result.omega_star - nominal.omega_star)
                / max(nominal.omega_star, 1e-9),
                d_current=result.current_star - nominal.current_star))
    return SensitivityReport(nominal=nominal, entries=entries)


def format_sensitivity_report(report: SensitivityReport) -> str:
    """Render a sensitivity report as an aligned text table."""
    lines = [
        f"nominal: omega* = {report.nominal.omega_star:.0f} rad/s, "
        f"I* = {report.nominal.current_star:.2f} A, "
        f"P = {report.nominal.total_power:.2f} W",
        f"{'parameter':<22}{'scale':>7}{'dP':>9}{'domega':>9}"
        f"{'dI (A)':>9}{'feasible':>10}",
        "-" * 66,
    ]
    for entry in report.entries:
        lines.append(
            f"{entry.parameter:<22}{entry.scale:>7.2f}"
            f"{entry.d_power * 100:>8.1f}%"
            f"{entry.d_omega * 100:>8.1f}%"
            f"{entry.d_current:>9.2f}"
            f"{str(entry.result.feasible):>10}")
    return "\n".join(lines)
