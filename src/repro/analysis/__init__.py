"""Analysis utilities: design-space sweeps, benchmark campaigns, reports.

:mod:`repro.analysis.sweep` regenerates the Figure 6(a)/(b) objective
surfaces; :mod:`repro.analysis.campaign` runs the full three-method,
eight-benchmark comparison behind Figures 6(c)-(f) and Table 2; and
:mod:`repro.analysis.report` renders the results as aligned text tables
(the library has no plotting dependency by design).
"""

from .sweep import SurfaceSweep, sweep_objective_surfaces
from .campaign import (
    BenchmarkComparison,
    CampaignResult,
    run_campaign,
)
from .report import (
    format_comparison_table,
    format_cop,
    format_pareto,
    format_surface,
    format_table2,
)
from .pareto import ParetoFrontier, ParetoPoint, trace_pareto_frontier
from .sensitivity import (
    SensitivityEntry,
    SensitivityReport,
    format_sensitivity_report,
    run_sensitivity_study,
)
from .cop import COPAnalysis, analyze_system_cop
from .verification import (
    ShapeCheck,
    format_shape_checks,
    verify_paper_shapes,
)
from .heatmap import render_delta_map, render_heatmap, \
    render_unit_overlay, temperature_fields
from .runaway import (
    RunawayBoundary,
    find_runaway_boundary_omega,
    format_runaway_boundaries,
    trace_runaway_boundary,
)

__all__ = [
    "SurfaceSweep",
    "sweep_objective_surfaces",
    "BenchmarkComparison",
    "CampaignResult",
    "run_campaign",
    "format_comparison_table",
    "format_cop",
    "format_pareto",
    "format_surface",
    "format_table2",
    "ParetoFrontier",
    "ParetoPoint",
    "trace_pareto_frontier",
    "SensitivityEntry",
    "SensitivityReport",
    "format_sensitivity_report",
    "run_sensitivity_study",
    "COPAnalysis",
    "analyze_system_cop",
    "ShapeCheck",
    "format_shape_checks",
    "verify_paper_shapes",
    "render_heatmap",
    "render_unit_overlay",
    "render_delta_map",
    "temperature_fields",
    "RunawayBoundary",
    "find_runaway_boundary_omega",
    "format_runaway_boundaries",
    "trace_runaway_boundary",
]
