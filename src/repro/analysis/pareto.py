"""Power/temperature Pareto frontier of the hybrid cooling system.

Optimizations 1 and 2 are the two ends of a trade-off: how much cooling
power does each degree of die-temperature headroom cost?  Sweeping the
thermal threshold through the reachable range and running Optimization 1
at each point traces the full frontier — useful for choosing T_max
budgets and for quantifying the marginal value of the TECs (the no-TEC
frontier sits strictly above the hybrid one and ends earlier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core import (
    CoolingProblem,
    Evaluator,
    ProblemLimits,
    minimize_power,
    minimize_temperature,
)
from ..errors import ConfigurationError


@dataclass
class ParetoPoint:
    """One frontier point.

    Attributes:
        t_max: The thermal threshold imposed, K.
        achieved_temperature: 𝒯 at the power-optimal point, K.
        total_power: 𝒫 at that point, W.
        omega: Operating fan speed, rad/s.
        current: Operating TEC current, A.
    """

    t_max: float
    achieved_temperature: float
    total_power: float
    omega: float
    current: float


@dataclass
class ParetoFrontier:
    """The swept frontier plus its boundary anchors.

    Attributes:
        points: Frontier points, coolest threshold first.
        coolest_temperature: The Optimization 2 optimum (the left end of
            the reachable range), K.
        problem_name: Workload label.
    """

    points: List[ParetoPoint]
    coolest_temperature: float
    problem_name: str

    @property
    def temperatures(self) -> np.ndarray:
        """Achieved temperatures along the frontier, K."""
        return np.array([p.achieved_temperature for p in self.points])

    @property
    def powers(self) -> np.ndarray:
        """Total powers along the frontier, W."""
        return np.array([p.total_power for p in self.points])

    def power_at(self, t_max: float) -> float:
        """Interpolated frontier power at a threshold, W."""
        if not self.points:
            raise ConfigurationError("Empty frontier")
        temps = np.array([p.t_max for p in self.points])
        powers = self.powers
        order = np.argsort(temps)
        return float(np.interp(t_max, temps[order], powers[order]))

    def marginal_power_per_kelvin(self) -> np.ndarray:
        """Frontier slope: watts saved per kelvin of headroom granted."""
        if len(self.points) < 2:
            raise ConfigurationError(
                "Need at least two frontier points for a slope")
        temps = np.array([p.t_max for p in self.points])
        return np.gradient(self.powers, temps)


def trace_pareto_frontier(
    problem: CoolingProblem,
    points: int = 8,
    t_max_range: Optional[tuple] = None,
    method: str = "slsqp",
    jac: str = "analytic",
) -> ParetoFrontier:
    """Sweep T_max and run Optimization 1 at each threshold.

    Args:
        problem: The workload (TEC or baseline package).
        points: Number of frontier samples.
        t_max_range: ``(low, high)`` in kelvin; defaults to
            [Optimization 2 optimum + 1 K, the problem's T_max].
        method: Solver backend.
        jac: Gradient mode for every solve
            (:data:`repro.core.JAC_MODES`).
    """
    if points < 2:
        raise ConfigurationError("Need at least two frontier points")
    base_evaluator = Evaluator(problem)
    coolest = minimize_temperature(base_evaluator, method=method,
                                   jac=jac)
    t_low_default = coolest.evaluation.max_chip_temperature + 1.0
    if t_max_range is None:
        t_low, t_high = t_low_default, problem.limits.t_max
    else:
        t_low, t_high = t_max_range
    if t_high <= t_low:
        raise ConfigurationError(
            f"Empty threshold range [{t_low:.1f}, {t_high:.1f}] K; the "
            "workload may already saturate its T_max")

    frontier: List[ParetoPoint] = []
    for t_max in np.linspace(t_low, t_high, points):
        limits = ProblemLimits(t_max=float(t_max),
                               omega_max=problem.limits.omega_max,
                               i_tec_max=problem.limits.i_tec_max)
        sub_problem = CoolingProblem(
            problem.name, problem.model, problem.leakage, problem.fan,
            problem.dynamic_cell_power, limits, problem.coverage,
            problem.fan_heat_fraction)
        evaluator = Evaluator(sub_problem)
        start = minimize_temperature(
            evaluator, method=method, early_stop_below=float(t_max),
            jac=jac)
        if start.evaluation.max_chip_temperature > t_max:
            continue  # threshold below the reachable floor
        outcome = minimize_power(
            evaluator, x0=(start.omega, start.current), method=method,
            jac=jac)
        evaluation = outcome.evaluation
        frontier.append(ParetoPoint(
            t_max=float(t_max),
            achieved_temperature=evaluation.max_chip_temperature,
            total_power=evaluation.total_power,
            omega=evaluation.omega,
            current=evaluation.current))
    return ParetoFrontier(points=frontier,
                          coolest_temperature=coolest.evaluation
                          .max_chip_temperature,
                          problem_name=problem.name)
