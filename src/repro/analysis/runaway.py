"""Runaway-boundary analysis: the minimum fan speed that saves the chip.

Figure 6(a)'s discussion quantifies the cliff: for Basicmath, "omega
should also be increased to about 150 RPM" before any current level
yields a bounded steady state.  This module computes that boundary
precisely (bisection on omega at fixed current — cheaper and sharper
than a full surface sweep) and maps it across benchmarks and currents,
including the paper's companion observation that *raising the TEC
current raises the required fan speed* (the pumped + Joule heat still
needs to leave).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core import CoolingProblem, Evaluator
from ..errors import ConfigurationError
from ..units import rad_s_to_rpm


@dataclass
class RunawayBoundary:
    """The boundary for one workload.

    Attributes:
        problem_name: Workload label.
        currents: Currents the boundary was traced at, A.
        min_omega: Per-current smallest bounded fan speed, rad/s
            (``inf`` when even omega_max runs away).
    """

    problem_name: str
    currents: List[float]
    min_omega: List[float]

    def at_current(self, current: float) -> float:
        """Boundary omega, rad/s, at the nearest traced current, A."""
        if not self.currents:
            raise ConfigurationError("Empty boundary")
        idx = min(range(len(self.currents)),
                  key=lambda i: abs(self.currents[i] - current))
        return self.min_omega[idx]

    def high_current_raises_boundary(self) -> bool:
        """True if the top traced current needs more fan than I = 0.

        The measured boundary is typically U-shaped: moderate current
        *lowers* the required fan speed (net hotspot pumping beats the
        modest Joule heat), while high current raises it steeply — the
        paper's point that current alone cannot replace airflow.
        """
        finite = [w for w in self.min_omega if w != float("inf")]
        if len(finite) < 2:
            return False
        return finite[-1] > finite[0]

    def never_zero(self) -> bool:
        """True if no traced current allows running with the fan off."""
        return all(w > 0.0 for w in self.min_omega)


def find_runaway_boundary_omega(
    problem: CoolingProblem,
    current: float = 0.0,
    tolerance: float = 1.0,
    evaluator: Evaluator = None,
) -> float:
    """Bisection: the smallest omega, rad/s, with a bounded steady
    state at TEC current ``current``, A (``tolerance`` is in rad/s).

    Returns ``inf`` when the workload runs away even at ``omega_max``
    and 0.0 when it is bounded with the fan off.
    """
    if tolerance <= 0.0:
        raise ConfigurationError("tolerance must be positive")
    evaluator = evaluator or Evaluator(problem)
    omega_max = problem.limits.omega_max

    if not evaluator.evaluate(omega_max, current).runaway:
        if not evaluator.evaluate(0.0, current).runaway:
            return 0.0
    else:
        return float("inf")

    lo, hi = 0.0, omega_max  # lo runs away, hi bounded
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if evaluator.evaluate(mid, current).runaway:
            lo = mid
        else:
            hi = mid
    return hi


def trace_runaway_boundary(
    problem: CoolingProblem,
    currents: Sequence[float] = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0),
    tolerance: float = 1.0,
) -> RunawayBoundary:
    """Boundary omega, rad/s, across a set of TEC currents, A."""
    if not currents:
        raise ConfigurationError("Need at least one current")
    evaluator = Evaluator(problem)
    min_omega = [find_runaway_boundary_omega(problem, float(current),
                                             tolerance, evaluator)
                 for current in currents]
    return RunawayBoundary(problem_name=problem.name,
                           currents=[float(c) for c in currents],
                           min_omega=min_omega)


def format_runaway_boundaries(
    boundaries: Dict[str, RunawayBoundary],
) -> str:
    """Render per-benchmark boundaries as a text table (RPM)."""
    if not boundaries:
        raise ConfigurationError("No boundaries to format")
    first = next(iter(boundaries.values()))
    header = "".join(f"{c:>8.1f}A" for c in first.currents)
    lines = [
        "minimum fan speed (RPM) avoiding thermal runaway, by TEC "
        "current:",
        f"{'benchmark':<14}" + header,
        "-" * (14 + 9 * len(first.currents)),
    ]
    for name, boundary in boundaries.items():
        cells = []
        for omega in boundary.min_omega:
            cells.append("   never" if omega == float("inf")
                         else f"{rad_s_to_rpm(omega):>8.0f}")
        lines.append(f"{name:<14}" + "".join(cells))
    return "\n".join(lines)
