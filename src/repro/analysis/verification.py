"""Executable paper-shape verification.

EXPERIMENTS.md records the published shapes this reproduction targets;
this module makes them machine-checkable: :func:`verify_paper_shapes`
takes a finished campaign and returns one :class:`ShapeCheck` per claim
— the same checks the figure benches assert, gathered in one place so a
CI job (or the ``repro campaign`` CLI) can report reproduction health in
a single call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from .campaign import CampaignResult

#: The paper's heavy/light split (Figure 6(c)'s red dashed box).
LIGHT_BENCHMARKS = ("basicmath", "crc32", "stringsearch")
HEAVY_BENCHMARKS = ("bitcount", "djkstra", "fft", "quicksort", "susan")


@dataclass
class ShapeCheck:
    """One verified claim.

    Attributes:
        claim: What the paper reports.
        passed: Whether the campaign reproduces it.
        detail: Measured numbers backing the verdict.
    """

    claim: str
    passed: bool
    detail: str


def _check(claim: str, passed: bool, detail: str) -> ShapeCheck:
    return ShapeCheck(claim=claim, passed=bool(passed), detail=detail)


def verify_paper_shapes(campaign: CampaignResult) -> List[ShapeCheck]:
    """Run every headline-shape check against a campaign.

    The campaign must cover the full eight-benchmark suite; partial
    campaigns raise (their aggregates would silently change meaning).
    """
    names = set(campaign.benchmark_names)
    expected = set(LIGHT_BENCHMARKS) | set(HEAVY_BENCHMARKS)
    if names != expected:
        raise ConfigurationError(
            f"Shape verification needs the full suite {sorted(expected)}, "
            f"got {sorted(names)}")

    checks: List[ShapeCheck] = []
    counts = campaign.feasibility_counts()

    checks.append(_check(
        "OFTEC meets T_max on all eight benchmarks",
        counts["oftec"] == 8,
        f"oftec feasible on {counts['oftec']}/8"))

    checks.append(_check(
        "Both baselines fail exactly the heavy five",
        all(not campaign[n].variable_opt1.feasible
            and not campaign[n].fixed.feasible
            for n in HEAVY_BENCHMARKS)
        and all(campaign[n].variable_opt1.feasible
                and campaign[n].fixed.feasible
                for n in LIGHT_BENCHMARKS),
        f"variable feasible {counts['variable-omega']}/8, "
        f"fixed feasible {counts['fixed-omega']}/8"))

    comparable = campaign.comparable_benchmarks()
    checks.append(_check(
        "Comparable set is the light three",
        set(comparable) == set(LIGHT_BENCHMARKS),
        f"comparable = {comparable}"))

    if set(comparable) == set(LIGHT_BENCHMARKS):
        save_var = campaign.average_power_saving("variable-omega")
        save_fix = campaign.average_power_saving("fixed-omega")
        checks.append(_check(
            "OFTEC saves power vs the variable-speed fan "
            "(paper: 2.6%)",
            save_var > 0.0,
            f"measured {save_var * 100:.1f}%"))
        checks.append(_check(
            "OFTEC saves more vs the fixed fan than vs the variable "
            "fan (paper: 8.1% vs 2.6%)",
            save_fix > save_var,
            f"measured {save_fix * 100:.1f}% vs {save_var * 100:.1f}%"))
        dt_var = campaign.average_temperature_delta("variable-omega")
        checks.append(_check(
            "OFTEC runs cooler than the variable-speed fan at its "
            "cheaper point (paper: 3.7 C)",
            dt_var > 0.0,
            f"measured {dt_var:.1f} K"))

    advantage = campaign.average_opt2_temperature_advantage()
    checks.append(_check(
        "After Optimization 2, OFTEC is clearly cooler than both "
        "baselines (paper: > 13 C average)",
        advantage > 5.0,
        f"measured {advantage:.1f} K"))

    oftec_higher_count = sum(
        c.oftec_opt2.evaluation.total_power
        > c.variable_opt2.evaluation.total_power
        for c in campaign.comparisons)
    opt2_power_higher = oftec_higher_count == len(campaign.comparisons)
    checks.append(_check(
        "After Optimization 2, OFTEC spends the most power "
        "(the TECs run hard)",
        opt2_power_higher,
        f"OFTEC highest on {oftec_higher_count}/8"))

    results = {c.name: c.oftec_opt1 for c in campaign.comparisons}
    light_i = max(results[n].current_star for n in LIGHT_BENCHMARKS)
    heavy_i = min(results[n].current_star for n in HEAVY_BENCHMARKS)
    checks.append(_check(
        "Table 2 current ordering: heavy benchmarks need more I* than "
        "light ones",
        heavy_i > light_i,
        f"light max {light_i:.2f} A < heavy min {heavy_i:.2f} A"))

    light_w = max(results[n].omega_star for n in LIGHT_BENCHMARKS)
    heavy_w = min(results[n].omega_star for n in HEAVY_BENCHMARKS)
    checks.append(_check(
        "Table 2 fan-speed ordering: heavy benchmarks need more "
        "omega* than light ones",
        heavy_w > light_w,
        f"light max {light_w:.0f} rad/s < heavy min {heavy_w:.0f} rad/s"))

    if all(c.tec_only is not None for c in campaign.comparisons):
        checks.append(_check(
            "TEC-only system hits thermal runaway on every benchmark",
            all(c.tec_only.runaway for c in campaign.comparisons),
            f"runaway on "
            f"{sum(c.tec_only.runaway for c in campaign.comparisons)}/8"))

    return checks


def format_shape_checks(checks: List[ShapeCheck]) -> str:
    """Render a verification report."""
    lines = ["paper-shape verification:"]
    for check in checks:
        mark = "PASS" if check.passed else "FAIL"
        lines.append(f"  [{mark}] {check.claim} ({check.detail})")
    passed = sum(c.passed for c in checks)
    lines.append(f"  {passed}/{len(checks)} shapes reproduced")
    return "\n".join(lines)
