"""Operating-point evaluation: ``(omega, I_TEC) -> (𝒯, 𝒫)``.

This is the numerical oracle both optimizations consume (the paper's
"thermal simulator" box in Figure 5): one steady-state network solve plus
the bookkeeping of Equations (10)-(13).  Thermal runaway maps to large
finite penalty values that grow with the diverging temperature, giving the
outer optimizer a consistent "get out of here" signal instead of a flat
cliff.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    EvaluationBudgetError,
    ThermalRunawayError,
)
from ..obs import runtime as _obs
from ..thermal import (
    SolveContext,
    SteadyStateResult,
    solve_steady_state,
    solve_steady_state_batch,
    steady_state_gradients,
)
from .problem import CoolingProblem

#: Additive power penalty (W) applied to runaway evaluations before the
#: temperature-growth term.
RUNAWAY_POWER_PENALTY = 1.0e3

#: Cap on the runaway temperature signal, K, to keep penalties bounded.
RUNAWAY_SIGNAL_CAP = 5.0e3

#: Relative step of the finite-difference gradient fallback, as a
#: fraction of each variable's box span — matching the solvers' own
#: normalized ``_FD_STEP`` so the fallback reproduces the legacy
#: backend differencing.
FD_STEP_FRACTION = 1.0e-3

#: Default LRU cap on cached evaluations.  Chosen far above the distinct
#: operating-point count of any real campaign (a few hundred), so the
#: bound only engages on pathological workloads (long chaos soaks,
#: unbounded online sweeps) where unbounded growth used to leak full
#: temperature vectors.
DEFAULT_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of the evaluation cache counters.

    Attributes:
        hits: Queries served from the cache.
        misses: Queries that required a fresh solve.
        evictions: Entries dropped by the LRU cap.
        size: Entries currently cached.
        limit: The configured cap.
        gradient_hits: :meth:`Evaluator.evaluate_with_grad` queries
            served a gradient already attached to a cached evaluation.
        gradient_misses: Gradient queries that had to compute one
            (adjoint block solve or finite-difference fallback).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    limit: int
    gradient_hits: int = 0
    gradient_misses: int = 0


@dataclass(frozen=True)
class EvaluationGradient:
    """First derivatives of one evaluation with respect to ``(omega, I)``.

    Attributes:
        d_temp_omega: ``d𝒯/d(omega)``, K/(rad/s).
        d_temp_current: ``d𝒯/d(I_TEC)``, K/A.
        d_power_omega: ``d𝒫/d(omega)``, W/(rad/s) — total power
            including the explicit fan term.
        d_power_current: ``d𝒫/d(I_TEC)``, W/A.
        mode: ``"adjoint"`` when computed by the transpose-solve path,
            ``"fd"`` when by the finite-difference fallback.
    """

    d_temp_omega: float
    d_temp_current: float
    d_power_omega: float
    d_power_current: float
    mode: str = "adjoint"

    @property
    def d_margin_omega(self) -> float:
        """``d(T_max - 𝒯)/d(omega)`` = the negated temperature slope."""
        return -self.d_temp_omega

    @property
    def d_margin_current(self) -> float:
        """``d(T_max - 𝒯)/d(I_TEC)``."""
        return -self.d_temp_current


@dataclass
class Evaluation:
    """One evaluated operating point.

    Attributes:
        omega: Fan speed, rad/s (clamped into bounds).
        current: TEC driving current, A (clamped into bounds).
        max_chip_temperature: 𝒯, K; a penalty value when ``runaway``.
        total_power: 𝒫 = P_leakage + P_TEC + P_fan, W; penalty when
            ``runaway``.
        leakage_power: Equation (11) term, W.
        tec_power: Equation (12) term, W.
        fan_power: Equation (13) term, W.
        feasible: ``𝒯 < T_max`` and not runaway.
        runaway: True when no bounded steady state exists here.
        steady: Full solver result (None for runaway points).
        gradient: Derivatives attached lazily by
            :meth:`Evaluator.evaluate_with_grad` (None until a gradient
            query lands on this point).
    """

    omega: float
    current: float
    max_chip_temperature: float
    total_power: float
    leakage_power: float
    tec_power: float
    fan_power: float
    feasible: bool
    runaway: bool
    steady: Optional[SteadyStateResult]
    gradient: Optional[EvaluationGradient] = None

    @property
    def cooling_power(self) -> float:
        """The actuator share of 𝒫 (TEC + fan, without leakage), W."""
        return self.tec_power + self.fan_power


class Evaluator:
    """Caching, warm-starting oracle for one :class:`CoolingProblem`.

    Successive optimizer queries move little in ``(omega, I)``; reusing
    the previous chip temperatures as the leakage linearization point cuts
    the relinearization loop to 1-2 iterations, and a result cache absorbs
    the repeated evaluations finite-difference gradients make.
    """

    def __init__(self, problem: CoolingProblem,
                 cache_decimals: int = 9,
                 cache_limit: int = DEFAULT_CACHE_LIMIT):
        if cache_limit < 1:
            raise ConfigurationError(
                f"cache_limit must be >= 1, got {cache_limit}")
        self.problem = problem
        self._cache: "OrderedDict[Tuple[float, float], Evaluation]" = \
            OrderedDict()
        self._cache_decimals = cache_decimals
        self._cache_limit = int(cache_limit)
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._context = SolveContext.for_model(problem.model)
        self.call_count = 0
        self.solve_count = 0
        self.adjoint_solve_count = 0
        self._gradient_hits = 0
        self._gradient_misses = 0
        self._solve_budget: Optional[int] = None
        self._budget_used = 0
        self._gauge_registry: Optional[object] = None

    def _ensure_gauges(self) -> None:
        """Register the cache-health collector on the live registry.

        Identity-guarded: runs once per installed registry, so the
        hot path pays one ``is`` check.  The registry holds the bound
        method weakly (see
        :meth:`repro.obs.MetricsRegistry.add_collector`), so the
        evaluator stays collectable; contributions from several
        evaluators sharing a registry are summed per gauge.
        """
        metrics = _obs.STATE.metrics
        if self._gauge_registry is not metrics:
            self._gauge_registry = metrics
            metrics.add_collector(self._cache_gauges)

    def _cache_gauges(self) -> dict:
        """Gauge contributions snapshotting :meth:`cache_info`."""
        info = self.cache_info()
        return {
            "evaluator.cache.size": float(info.size),
            "evaluator.cache.capacity": float(info.limit),
            "evaluator.cache.evictions": float(info.evictions),
            "evaluator.cache.gradient_hits": float(info.gradient_hits),
            "evaluator.cache.gradient_misses":
                float(info.gradient_misses),
        }

    @property
    def cache_limit(self) -> int:
        """LRU cap on cached evaluations."""
        return self._cache_limit

    @property
    def context(self) -> SolveContext:
        """The solve context carrying the warm linearization point."""
        return self._context

    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction counters and current size of the cache."""
        return CacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            evictions=self._cache_evictions,
            size=len(self._cache),
            limit=self._cache_limit,
            gradient_hits=self._gradient_hits,
            gradient_misses=self._gradient_misses)

    def set_solve_budget(self, budget: Optional[int]) -> None:
        """Cap the number of *fresh* thermal solves until the next call.

        Cache hits are free.  Once the cap is reached, further solves
        raise :class:`~repro.errors.EvaluationBudgetError` — the
        resilient solver's per-attempt circuit breaker.  ``None`` removes
        the cap; setting a budget resets the used counter.
        """
        if budget is not None and budget <= 0:
            raise ConfigurationError(
                f"solve budget must be positive, got {budget}")
        self._solve_budget = budget
        self._budget_used = 0

    def clamp(self, omega: float, current: float) -> Tuple[float, float]:
        """Clamp a query into the box constraints (16)-(17)."""
        limits = self.problem.limits
        omega_c = float(min(max(omega, 0.0), limits.omega_max))
        current_c = float(min(max(current, 0.0),
                              self.problem.current_upper_bound))
        return omega_c, current_c

    def evaluate(self, omega: float, current: float) -> Evaluation:
        """Evaluate 𝒯 and 𝒫 at one ``(omega, current)`` operating
        point (fan speed in rad/s, TEC current in A); cached."""
        self.call_count += 1
        omega, current = self.clamp(omega, current)
        key = (round(omega, self._cache_decimals),
               round(current, self._cache_decimals))
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            self._cache_hits += 1
            if _obs.STATE.enabled:
                self._ensure_gauges()
                _obs.STATE.metrics.counter(
                    "evaluator.cache.hits").inc()
            return hit
        self._cache_misses += 1
        if _obs.STATE.enabled:
            self._ensure_gauges()
            _obs.STATE.metrics.counter("evaluator.cache.misses").inc()
            with _obs.STATE.tracer.span("evaluate", omega=omega,
                                        current=current):
                result = self._guard_finite(
                    self._solve(omega, current))
        else:
            result = self._guard_finite(self._solve(omega, current))
        self._store(key, result)
        return result

    def evaluate_with_grad(self, omega: float,
                           current: float) -> Evaluation:
        """Evaluate one point and attach its ``(d𝒯, d𝒫)`` gradient
        (``omega`` is the fan speed, rad/s; ``current`` the TEC driving
        current, A).

        The forward value goes through :meth:`evaluate` (same cache,
        same budget accounting); the gradient rides the adjoint path —
        one transposed ``(n, 2)`` block back-substitution against the
        forward solve's cached LU factor, counted in
        :attr:`adjoint_solve_count` and in the operator's
        ``adjoint_solves``, never against the solve budget.  Gradients
        attach to the cached :class:`Evaluation` in place, so repeat
        queries at one operating point are gradient cache hits.

        Subclasses that override ``_solve`` (the fault injectors) and
        runaway penalty points degrade to a central finite-difference
        fallback built from bounded, cached, budget-accounted
        :meth:`evaluate` calls.
        """
        evaluation = self.evaluate(omega, current)
        if evaluation.gradient is not None:
            self._gradient_hits += 1
            return evaluation
        self._gradient_misses += 1
        if self._adjoint_capable() and not evaluation.runaway:
            evaluation.gradient = self._adjoint_gradient(evaluation)
        else:
            evaluation.gradient = self._fd_gradient(evaluation)
        return evaluation

    def _adjoint_capable(self) -> bool:
        """Whether the analytic adjoint path applies to this instance.

        Subclasses that intercept ``_solve`` (fault injection) must see
        every solve the gradient spends, so they take the
        finite-difference fallback built on :meth:`evaluate`.
        """
        return type(self)._solve is Evaluator._solve

    def _adjoint_gradient(self, evaluation: Evaluation,
                          ) -> EvaluationGradient:
        """One adjoint block solve at a converged evaluation."""
        problem = self.problem
        fan_gradient = problem.fan.power_gradient(evaluation.omega)
        grads = steady_state_gradients(
            problem.model, evaluation.steady,
            problem.dynamic_cell_power,
            leakage=problem.leakage,
            sink_heat=problem.fan_heat_fraction * evaluation.fan_power,
            sink_heat_gradient=problem.fan_heat_fraction * fan_gradient)
        self.adjoint_solve_count += 2
        if _obs.STATE.enabled:
            _obs.STATE.metrics.counter(
                "evaluator.adjoint.solves").inc(2)
        return EvaluationGradient(
            d_temp_omega=grads.d_temp_omega,
            d_temp_current=grads.d_temp_current,
            d_power_omega=grads.d_power_omega + fan_gradient,
            d_power_current=grads.d_power_current,
            mode="adjoint")

    def _fd_gradient(self, evaluation: Evaluation) -> EvaluationGradient:
        """Central-difference fallback (fault seams, runaway points).

        Differences :meth:`evaluate` itself, so every probe is clamped,
        cached, budget-accounted, and — on fault-injecting subclasses —
        intercepted like any other solve.  Steps shrink to one-sided
        differences against an active bound.
        """
        limits = self.problem.limits
        d_temp = [0.0, 0.0]
        d_power = [0.0, 0.0]
        spans = (limits.omega_max, self.problem.current_upper_bound)
        point = (evaluation.omega, evaluation.current)
        for axis, span in enumerate(spans):
            if span <= 0.0:
                continue
            step = FD_STEP_FRACTION * span
            lo = max(point[axis] - step, 0.0)
            hi = min(point[axis] + step, span)
            if hi <= lo:
                continue
            probe_hi = list(point)
            probe_lo = list(point)
            probe_hi[axis] = hi
            probe_lo[axis] = lo
            hi_eval = self.evaluate(*probe_hi)
            lo_eval = self.evaluate(*probe_lo)
            width = hi - lo
            d_temp[axis] = (hi_eval.max_chip_temperature  # physlint: disable=RPR303
                            - lo_eval.max_chip_temperature) / width
            d_power[axis] = (hi_eval.total_power  # physlint: disable=RPR303
                             - lo_eval.total_power) / width
        return EvaluationGradient(
            d_temp_omega=d_temp[0], d_temp_current=d_temp[1],
            d_power_omega=d_power[0], d_power_current=d_power[1],
            mode="fd")

    def evaluate_many(self, points: Sequence[Tuple[float, float]],
                      workers: Optional[int] = None,
                      executor: Optional[str] = None,
                      ) -> List[Evaluation]:
        """Evaluate a sequence of ``(omega, current)`` points in order.

        Semantically identical to calling :meth:`evaluate` per point
        (same caching, warm-start chaining, budget accounting, and
        penalty mapping).  On leakage-free problems the uncached points
        are dispatched through the operator layer's batched solve, which
        groups points sharing a system matrix and back-substitutes their
        RHS columns through one factorization.

        ``workers`` fans point chunks across worker processes via
        ``repro.exec`` (None defers to ``REPRO_WORKERS``; 0 stays
        in-process).  The fan-out is *pure*: chunks are evaluated by
        fresh worker-side evaluators against the same problem, values
        are independent of chunking, and this instance's cache and
        counters are left untouched.  It engages only where the
        batched path applies (leakage-free, base-class solve, no
        budget) — elsewhere points fall back to the in-process path,
        whose warm-start chaining a fan-out would perturb.

        ``executor`` selects the fan-out backend (``"process"``,
        ``"thread"``, or ``"serial"``; None defers to
        ``REPRO_EXECUTOR``).  Values are backend-independent.
        """
        if not self._batchable():
            return [self.evaluate(omega, current)
                    for omega, current in points]
        if workers is not None or len(points) > 1:
            from ..exec import evaluate_points, resolve_workers
            worker_count = resolve_workers(workers)
            if worker_count >= 1 and len(points) > 1:
                return evaluate_points(self.problem, list(points),
                                       worker_count,
                                       executor=executor)
        evaluations: List[Optional[Evaluation]] = [None] * len(points)
        fresh_keys: "OrderedDict[Tuple[float, float], List[int]]" = \
            OrderedDict()
        clamped: List[Tuple[float, float]] = []
        hits_before = self._cache_hits
        for index, (omega, current) in enumerate(points):
            self.call_count += 1
            omega, current = self.clamp(omega, current)
            clamped.append((omega, current))
            key = (round(omega, self._cache_decimals),
                   round(current, self._cache_decimals))
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                self._cache_hits += 1
                evaluations[index] = hit
            else:
                fresh_keys.setdefault(key, []).append(index)
        if fresh_keys:
            solve_points = []
            sink_heats = []
            fan_powers = []
            for key, members in fresh_keys.items():
                omega, current = clamped[members[0]]
                fan_power = self.problem.fan.power(omega)
                solve_points.append((omega, current))
                fan_powers.append(fan_power)
                sink_heats.append(
                    self.problem.fan_heat_fraction * fan_power)
            self._cache_misses += len(fresh_keys)
            self.solve_count += len(fresh_keys)
            if _obs.STATE.enabled:
                _obs.STATE.metrics.counter(
                    "evaluator.cache.misses").inc(len(fresh_keys))
                with _obs.STATE.tracer.span(
                        "evaluate_many", points=len(points),
                        fresh=len(fresh_keys)):
                    batch = solve_steady_state_batch(
                        self.problem.model, solve_points,
                        self.problem.dynamic_cell_power, leakage=None,
                        sink_heats=sink_heats, context=self._context)
            else:
                batch = solve_steady_state_batch(
                    self.problem.model, solve_points,
                    self.problem.dynamic_cell_power, leakage=None,
                    sink_heats=sink_heats, context=self._context)
            for slot, (key, members) in enumerate(fresh_keys.items()):
                omega, current = solve_points[slot]
                outcome = batch[slot]
                if isinstance(outcome, ThermalRunawayError):
                    evaluation = self._runaway_evaluation(
                        omega, current, fan_powers[slot], outcome)
                else:
                    evaluation = self._evaluation_from_steady(
                        omega, current, fan_powers[slot], outcome)
                evaluation = self._guard_finite(evaluation)
                self._store(key, evaluation)
                # Points beyond the first at the same key would have hit
                # the cache under sequential evaluation.
                self._cache_hits += len(members) - 1
                for index in members:
                    evaluations[index] = evaluation
        if _obs.STATE.enabled:
            _obs.STATE.metrics.counter("evaluator.cache.hits").inc(
                self._cache_hits - hits_before)
        return [e for e in evaluations if e is not None]

    def _batchable(self) -> bool:
        """Whether the batched fast path preserves this instance's
        semantics: base-class solve behavior (subclasses such as the
        fault injectors override ``_solve`` and must keep intercepting
        every fresh solve), no leakage loop, and no active solve budget
        (the batch entry has no per-solve circuit breaker)."""
        return (type(self)._solve is Evaluator._solve
                and self.problem.leakage is None
                and self._solve_budget is None)

    def _store(self, key: Tuple[float, float],
               result: Evaluation) -> None:
        self._cache[key] = result
        if len(self._cache) > self._cache_limit:
            self._cache.popitem(last=False)
            self._cache_evictions += 1

    def _guard_finite(self, evaluation: Evaluation) -> Evaluation:
        """NaN/Inf guard: corrupt objective values (a NaN power entry,
        an Inf temperature) are remapped onto the runaway penalty so the
        outer optimizer sees a consistent "get out of here" signal
        instead of poisoning its line search.  Finite evaluations pass
        through untouched (runaway penalties are finite by design)."""
        if evaluation.runaway:
            return evaluation
        if np.isfinite(evaluation.max_chip_temperature) \
                and np.isfinite(evaluation.total_power):
            return evaluation
        return self._runaway_evaluation(
            evaluation.omega, evaluation.current, evaluation.fan_power,
            ThermalRunawayError(
                "non-finite objective value at "
                f"omega={evaluation.omega:.1f}, "
                f"I={evaluation.current:.2f} "
                f"(T={evaluation.max_chip_temperature}, "
                f"P={evaluation.total_power})",
                max_temperature=float("inf")))

    def _runaway_evaluation(self, omega: float, current: float,
                            fan_power: float,
                            err: ThermalRunawayError) -> Evaluation:
        """The penalty evaluation for an unbounded operating point.

        The signal grows with the diverging temperature so the optimizer
        can climb out, but never drops below the runaway ceiling: a
        wildly unphysical solve (e.g. all-negative temperatures from an
        indefinite system) must still read as "worse than any bounded
        state".  (omega in rad/s, current in A, fan_power in W.)
        """
        floor = self.problem.model.config.runaway_ceiling
        signal = min(max(err.max_temperature, floor),
                     RUNAWAY_SIGNAL_CAP)
        if not np.isfinite(signal):
            signal = RUNAWAY_SIGNAL_CAP
        return Evaluation(
            omega=omega, current=current,
            max_chip_temperature=signal,
            total_power=RUNAWAY_POWER_PENALTY + signal,
            leakage_power=float("inf"),
            tec_power=0.0, fan_power=fan_power,
            feasible=False, runaway=True, steady=None)

    def _solve(self, omega: float, current: float) -> Evaluation:
        problem = self.problem
        if self._solve_budget is not None:
            if self._budget_used >= self._solve_budget:
                if _obs.STATE.enabled:
                    _obs.STATE.tracer.event(
                        "budget.exhausted",
                        budget=self._solve_budget,
                        omega=omega, current=current)
                    _obs.STATE.metrics.counter(
                        "evaluator.budget.exhausted").inc()
                raise EvaluationBudgetError(
                    f"evaluation budget of {self._solve_budget} thermal "
                    f"solves exhausted at omega={omega:.1f}, "
                    f"I={current:.2f}")
            self._budget_used += 1
        self.solve_count += 1
        fan_power = problem.fan.power(omega)
        try:
            steady = solve_steady_state(
                problem.model, omega, current,
                problem.dynamic_cell_power, problem.leakage,
                sink_heat=problem.fan_heat_fraction * fan_power,
                context=self._context)
        except ThermalRunawayError as err:
            return self._runaway_evaluation(omega, current, fan_power,
                                            err)
        return self._evaluation_from_steady(omega, current, fan_power,
                                            steady)

    def _evaluation_from_steady(self, omega: float, current: float,
                                fan_power: float,
                                steady: SteadyStateResult) -> Evaluation:
        """Package a successful steady-state solve as an evaluation."""
        total = steady.leakage_power + steady.tec_power + fan_power
        return Evaluation(
            omega=omega, current=current,
            max_chip_temperature=steady.max_chip_temperature,
            total_power=total,
            leakage_power=steady.leakage_power,
            tec_power=steady.tec_power,
            fan_power=fan_power,
            feasible=steady.max_chip_temperature
            < self.problem.limits.t_max,
            runaway=False,
            steady=steady)

    # -- the two objective functions of Section 5 ---------------------

    def temperature_objective(self, omega: float, current: float) -> float:
        """𝒯(omega, I) in K for omega in rad/s and I in A
        (Optimization 2's objective, Equation 19)."""
        return self.evaluate(omega, current).max_chip_temperature

    def power_objective(self, omega: float, current: float) -> float:
        """𝒫(omega, I) in W for omega in rad/s and I in A
        (Optimization 1's objective, Equation 10)."""
        return self.evaluate(omega, current).total_power

    def thermal_margin(self, omega: float, current: float) -> float:
        """``T_max - 𝒯`` in K (omega in rad/s, current in A);
        positive inside Constraint (15)."""
        return (self.problem.limits.t_max
                - self.evaluate(omega, current).max_chip_temperature)

    def clear_cache(self) -> None:
        """Drop cached evaluations and the warm linearization point
        (e.g. after mutating the problem)."""
        self._cache.clear()
        self._context.reset()
