"""Operating-point evaluation: ``(omega, I_TEC) -> (𝒯, 𝒫)``.

This is the numerical oracle both optimizations consume (the paper's
"thermal simulator" box in Figure 5): one steady-state network solve plus
the bookkeeping of Equations (10)-(13).  Thermal runaway maps to large
finite penalty values that grow with the diverging temperature, giving the
outer optimizer a consistent "get out of here" signal instead of a flat
cliff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    EvaluationBudgetError,
    ThermalRunawayError,
)
from ..thermal import SteadyStateResult, solve_steady_state
from .problem import CoolingProblem

#: Additive power penalty (W) applied to runaway evaluations before the
#: temperature-growth term.
RUNAWAY_POWER_PENALTY = 1.0e3

#: Cap on the runaway temperature signal, K, to keep penalties bounded.
RUNAWAY_SIGNAL_CAP = 5.0e3


@dataclass
class Evaluation:
    """One evaluated operating point.

    Attributes:
        omega: Fan speed, rad/s (clamped into bounds).
        current: TEC driving current, A (clamped into bounds).
        max_chip_temperature: 𝒯, K; a penalty value when ``runaway``.
        total_power: 𝒫 = P_leakage + P_TEC + P_fan, W; penalty when
            ``runaway``.
        leakage_power: Equation (11) term, W.
        tec_power: Equation (12) term, W.
        fan_power: Equation (13) term, W.
        feasible: ``𝒯 < T_max`` and not runaway.
        runaway: True when no bounded steady state exists here.
        steady: Full solver result (None for runaway points).
    """

    omega: float
    current: float
    max_chip_temperature: float
    total_power: float
    leakage_power: float
    tec_power: float
    fan_power: float
    feasible: bool
    runaway: bool
    steady: Optional[SteadyStateResult]

    @property
    def cooling_power(self) -> float:
        """The actuator share of 𝒫 (TEC + fan, without leakage), W."""
        return self.tec_power + self.fan_power


class Evaluator:
    """Caching, warm-starting oracle for one :class:`CoolingProblem`.

    Successive optimizer queries move little in ``(omega, I)``; reusing
    the previous chip temperatures as the leakage linearization point cuts
    the relinearization loop to 1-2 iterations, and a result cache absorbs
    the repeated evaluations finite-difference gradients make.
    """

    def __init__(self, problem: CoolingProblem,
                 cache_decimals: int = 9):
        self.problem = problem
        self._cache: Dict[Tuple[float, float], Evaluation] = {}
        self._cache_decimals = cache_decimals
        self._warm_chip: Optional[np.ndarray] = None
        self.call_count = 0
        self.solve_count = 0
        self._solve_budget: Optional[int] = None
        self._budget_used = 0

    def set_solve_budget(self, budget: Optional[int]) -> None:
        """Cap the number of *fresh* thermal solves until the next call.

        Cache hits are free.  Once the cap is reached, further solves
        raise :class:`~repro.errors.EvaluationBudgetError` — the
        resilient solver's per-attempt circuit breaker.  ``None`` removes
        the cap; setting a budget resets the used counter.
        """
        if budget is not None and budget <= 0:
            raise ConfigurationError(
                f"solve budget must be positive, got {budget}")
        self._solve_budget = budget
        self._budget_used = 0

    def clamp(self, omega: float, current: float) -> Tuple[float, float]:
        """Clamp a query into the box constraints (16)-(17)."""
        limits = self.problem.limits
        omega_c = float(min(max(omega, 0.0), limits.omega_max))
        current_c = float(min(max(current, 0.0),
                              self.problem.current_upper_bound))
        return omega_c, current_c

    def evaluate(self, omega: float, current: float) -> Evaluation:
        """Evaluate 𝒯 and 𝒫 at one ``(omega, current)`` operating
        point (fan speed in rad/s, TEC current in A); cached."""
        self.call_count += 1
        omega, current = self.clamp(omega, current)
        key = (round(omega, self._cache_decimals),
               round(current, self._cache_decimals))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        result = self._guard_finite(self._solve(omega, current))
        self._cache[key] = result
        return result

    def _guard_finite(self, evaluation: Evaluation) -> Evaluation:
        """NaN/Inf guard: corrupt objective values (a NaN power entry,
        an Inf temperature) are remapped onto the runaway penalty so the
        outer optimizer sees a consistent "get out of here" signal
        instead of poisoning its line search.  Finite evaluations pass
        through untouched (runaway penalties are finite by design)."""
        if evaluation.runaway:
            return evaluation
        if np.isfinite(evaluation.max_chip_temperature) \
                and np.isfinite(evaluation.total_power):
            return evaluation
        return self._runaway_evaluation(
            evaluation.omega, evaluation.current, evaluation.fan_power,
            ThermalRunawayError(
                "non-finite objective value at "
                f"omega={evaluation.omega:.1f}, "
                f"I={evaluation.current:.2f} "
                f"(T={evaluation.max_chip_temperature}, "
                f"P={evaluation.total_power})",
                max_temperature=float("inf")))

    def _runaway_evaluation(self, omega: float, current: float,
                            fan_power: float,
                            err: ThermalRunawayError) -> Evaluation:
        """The penalty evaluation for an unbounded operating point.

        The signal grows with the diverging temperature so the optimizer
        can climb out, but never drops below the runaway ceiling: a
        wildly unphysical solve (e.g. all-negative temperatures from an
        indefinite system) must still read as "worse than any bounded
        state".  (omega in rad/s, current in A, fan_power in W.)
        """
        floor = self.problem.model.config.runaway_ceiling
        signal = min(max(err.max_temperature, floor),
                     RUNAWAY_SIGNAL_CAP)
        if not np.isfinite(signal):
            signal = RUNAWAY_SIGNAL_CAP
        return Evaluation(
            omega=omega, current=current,
            max_chip_temperature=signal,
            total_power=RUNAWAY_POWER_PENALTY + signal,
            leakage_power=float("inf"),
            tec_power=0.0, fan_power=fan_power,
            feasible=False, runaway=True, steady=None)

    def _solve(self, omega: float, current: float) -> Evaluation:
        problem = self.problem
        if self._solve_budget is not None:
            if self._budget_used >= self._solve_budget:
                raise EvaluationBudgetError(
                    f"evaluation budget of {self._solve_budget} thermal "
                    f"solves exhausted at omega={omega:.1f}, "
                    f"I={current:.2f}")
            self._budget_used += 1
        self.solve_count += 1
        fan_power = problem.fan.power(omega)
        try:
            steady = solve_steady_state(
                problem.model, omega, current,
                problem.dynamic_cell_power, problem.leakage,
                initial_guess=self._warm_chip,
                sink_heat=problem.fan_heat_fraction * fan_power)
        except ThermalRunawayError as err:
            return self._runaway_evaluation(omega, current, fan_power,
                                            err)
        self._warm_chip = steady.chip_temperatures
        total = steady.leakage_power + steady.tec_power + fan_power
        return Evaluation(
            omega=omega, current=current,
            max_chip_temperature=steady.max_chip_temperature,
            total_power=total,
            leakage_power=steady.leakage_power,
            tec_power=steady.tec_power,
            fan_power=fan_power,
            feasible=steady.max_chip_temperature < problem.limits.t_max,
            runaway=False,
            steady=steady)

    # -- the two objective functions of Section 5 ---------------------

    def temperature_objective(self, omega: float, current: float) -> float:
        """𝒯(omega, I) in K for omega in rad/s and I in A
        (Optimization 2's objective, Equation 19)."""
        return self.evaluate(omega, current).max_chip_temperature

    def power_objective(self, omega: float, current: float) -> float:
        """𝒫(omega, I) in W for omega in rad/s and I in A
        (Optimization 1's objective, Equation 10)."""
        return self.evaluate(omega, current).total_power

    def thermal_margin(self, omega: float, current: float) -> float:
        """``T_max - 𝒯`` in K (omega in rad/s, current in A);
        positive inside Constraint (15)."""
        return (self.problem.limits.t_max
                - self.evaluate(omega, current).max_chip_temperature)

    def clear_cache(self) -> None:
        """Drop cached evaluations (e.g. after mutating the problem)."""
        self._cache.clear()
        self._warm_chip = None
