"""Multi-channel OFTEC: independently-driven TEC strings.

The paper wires every deployed TEC electrically in series, so one current
drives the whole die — hot units and lukewarm ones alike.  The natural
extension (in the spirit of its per-region deployment references [6][7])
is to split the array into a few independently-driven *channels* (e.g.
the integer core, the FP cluster, the load/store machinery) and let the
optimizer pick one current per channel plus the fan speed.

This module implements that extension end to end: channel assignment
from unit groups, the per-cell current synthesis, the (𝒯, 𝒫) evaluator,
and the SLSQP-based generalization of Algorithm 1 over ``1 + n_channels``
variables.  The single-channel case reduces exactly to the paper's
formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from ..errors import ConfigurationError, ThermalRunawayError
from ..obs.clock import stopwatch
from ..thermal import solve_steady_state
from .evaluator import RUNAWAY_POWER_PENALTY, RUNAWAY_SIGNAL_CAP
from .problem import CoolingProblem


class ChannelAssignment:
    """Partition of the TEC-covered cells into driven channels."""

    def __init__(self, problem: CoolingProblem,
                 channel_units: Mapping[str, Sequence[str]]):
        """Build a channel map from named unit groups.

        Args:
            problem: A TEC-equipped cooling problem carrying a coverage.
            channel_units: ``{channel_name: [unit, ...]}``.  Every
                TEC-covered cell must belong to exactly one channel
                (cells of unlisted units join the implicit ``"rest"``
                channel).
        """
        if not problem.has_tec:
            raise ConfigurationError(
                "Channel assignment requires a TEC-equipped problem")
        if problem.coverage is None:
            raise ConfigurationError(
                "Channel assignment requires the problem's CellCoverage")
        if not channel_units:
            raise ConfigurationError("Need at least one channel")
        self.problem = problem
        coverage = problem.coverage
        mask = problem.model.tec_array.coverage_mask
        names = coverage.floorplan.unit_names

        claimed: Dict[str, str] = {}
        for channel, units in channel_units.items():
            for unit in units:
                if unit not in names:
                    raise ConfigurationError(
                        f"Channel {channel!r} references unknown unit "
                        f"{unit!r}")
                if unit in claimed:
                    raise ConfigurationError(
                        f"Unit {unit!r} assigned to both "
                        f"{claimed[unit]!r} and {channel!r}")
                claimed[unit] = channel

        self.channel_names: List[str] = list(channel_units)
        dominant = coverage.dominant_unit_per_cell()
        cell_channel = np.full(len(dominant), -1, dtype=int)
        needs_rest = False
        for cell, unit in enumerate(dominant):
            if not mask[cell]:
                continue
            channel = claimed.get(unit)
            if channel is None:
                needs_rest = True
            else:
                cell_channel[cell] = self.channel_names.index(channel)
        if needs_rest:
            if "rest" in self.channel_names:
                rest_index = self.channel_names.index("rest")
            else:
                self.channel_names.append("rest")
                rest_index = len(self.channel_names) - 1
            for cell, unit in enumerate(dominant):
                if mask[cell] and cell_channel[cell] < 0:
                    cell_channel[cell] = rest_index
        #: Per-cell channel index (-1 on cells without TEC modules).
        self.cell_channel = cell_channel

    @property
    def channel_count(self) -> int:
        """Number of channels (including the implicit rest channel)."""
        return len(self.channel_names)

    def cell_currents(self, channel_currents: Sequence[float],
                      ) -> np.ndarray:
        """Expand per-channel TEC currents, A, into the per-cell
        array."""
        currents = np.asarray(channel_currents, dtype=float)
        if currents.shape != (self.channel_count,):
            raise ConfigurationError(
                f"Expected {self.channel_count} channel currents, got "
                f"{currents.shape}")
        if (currents < 0.0).any():
            raise ConfigurationError("Channel currents must be >= 0")
        cell = np.zeros(self.cell_channel.size, dtype=float)
        covered = self.cell_channel >= 0
        cell[covered] = currents[self.cell_channel[covered]]
        return cell

    def channel_cell_counts(self) -> Dict[str, int]:
        """Number of covered cells per channel."""
        return {name: int((self.cell_channel == idx).sum())
                for idx, name in enumerate(self.channel_names)}


@dataclass
class MultiChannelEvaluation:
    """One evaluated multi-channel operating point."""

    omega: float
    channel_currents: np.ndarray
    max_chip_temperature: float
    total_power: float
    leakage_power: float
    tec_power: float
    fan_power: float
    feasible: bool
    runaway: bool


@dataclass
class MultiChannelResult:
    """Outcome of the multi-channel Algorithm 1 generalization.

    Attributes:
        omega_star: Optimal fan speed, rad/s.
        channel_currents: Optimal per-channel currents, A (in
            ``assignment.channel_names`` order).
        evaluation: Full evaluation at the optimum.
        feasible: Whether T_max is met.
        runtime_seconds: Wall-clock time of the optimization.
        evaluations: Thermal solves performed.
        channel_names: Channel labels, aligned with the currents.
    """

    omega_star: float
    channel_currents: np.ndarray
    evaluation: MultiChannelEvaluation
    feasible: bool
    runtime_seconds: float
    evaluations: int
    channel_names: List[str] = field(default_factory=list)

    @property
    def total_power(self) -> float:
        """𝒫 at the optimum, W."""
        return self.evaluation.total_power

    def currents_by_channel(self) -> Dict[str, float]:
        """``{channel: current}`` at the optimum."""
        return dict(zip(self.channel_names,
                        self.channel_currents.tolist()))


class MultiChannelEvaluator:
    """Caching oracle over ``(omega, I_1, ..., I_k)``."""

    def __init__(self, assignment: ChannelAssignment):
        self.assignment = assignment
        self.problem = assignment.problem
        self._cache: Dict[Tuple[float, ...], MultiChannelEvaluation] = {}
        self._warm: Optional[np.ndarray] = None
        self.solve_count = 0

    def evaluate(self, omega: float, channel_currents: Sequence[float],
                 ) -> MultiChannelEvaluation:
        """Evaluate one operating point: fan speed omega, rad/s, and
        per-channel TEC currents, A (cached)."""
        problem = self.problem
        limits = problem.limits
        omega = float(np.clip(omega, 0.0, limits.omega_max))
        currents = np.clip(np.asarray(channel_currents, dtype=float),
                           0.0, limits.i_tec_max)
        key = (round(omega, 9),) + tuple(np.round(currents, 9).tolist())
        hit = self._cache.get(key)
        if hit is not None:
            return hit

        self.solve_count += 1
        fan_power = problem.fan.power(omega)
        cell_currents = self.assignment.cell_currents(currents)
        try:
            steady = solve_steady_state(
                problem.model, omega, cell_currents,
                problem.dynamic_cell_power, problem.leakage,
                initial_guess=self._warm,
                sink_heat=problem.fan_heat_fraction * fan_power)
        except ThermalRunawayError as err:
            floor = problem.model.config.runaway_ceiling
            signal = min(max(err.max_temperature, floor),
                         RUNAWAY_SIGNAL_CAP)
            if not np.isfinite(signal):
                signal = RUNAWAY_SIGNAL_CAP
            result = MultiChannelEvaluation(
                omega=omega, channel_currents=currents,
                max_chip_temperature=signal,
                total_power=RUNAWAY_POWER_PENALTY + signal,
                leakage_power=float("inf"), tec_power=0.0,
                fan_power=fan_power, feasible=False, runaway=True)
            self._cache[key] = result
            return result
        self._warm = steady.chip_temperatures
        total = steady.leakage_power + steady.tec_power + fan_power
        result = MultiChannelEvaluation(
            omega=omega, channel_currents=currents,
            max_chip_temperature=steady.max_chip_temperature,
            total_power=total,
            leakage_power=steady.leakage_power,
            tec_power=steady.tec_power,
            fan_power=fan_power,
            feasible=steady.max_chip_temperature < limits.t_max,
            runaway=False)
        self._cache[key] = result
        return result


def run_oftec_multichannel(
    problem: CoolingProblem,
    channel_units: Mapping[str, Sequence[str]],
    max_iterations: int = 80,
) -> MultiChannelResult:
    """Algorithm 1 generalized to per-channel TEC currents.

    Stage 1 minimizes 𝒯 from the midpoint until a feasible point
    appears; stage 2 minimizes 𝒫 subject to ``𝒯 < T_max``, both with
    SLSQP over normalized ``(omega, I_1, ..., I_k)``.
    """
    watch = stopwatch()
    assignment = ChannelAssignment(problem, channel_units)
    evaluator = MultiChannelEvaluator(assignment)
    limits = problem.limits
    k = assignment.channel_count
    dims = 1 + k

    def to_physical(x: np.ndarray) -> Tuple[float, np.ndarray]:
        x = np.clip(x, 0.0, 1.0)
        return (float(x[0] * limits.omega_max),
                x[1:] * limits.i_tec_max)

    def temperature(x: np.ndarray) -> float:
        omega, currents = to_physical(x)
        return evaluator.evaluate(omega, currents).max_chip_temperature

    def power(x: np.ndarray) -> float:
        omega, currents = to_physical(x)
        return evaluator.evaluate(omega, currents).total_power

    def margin(x: np.ndarray) -> float:
        return limits.t_max - temperature(x)

    bounds = [(0.0, 1.0)] * dims
    x0 = np.full(dims, 0.5)

    best_feasible: Optional[np.ndarray] = None
    if temperature(x0) > limits.t_max:
        opt2 = minimize(temperature, x0, method="SLSQP", bounds=bounds,
                        options={"maxiter": max_iterations,
                                 "ftol": 1e-7, "eps": 1e-3})
        candidate = np.clip(opt2.x, 0.0, 1.0)
        if temperature(candidate) > limits.t_max:
            omega, currents = to_physical(candidate)
            evaluation = evaluator.evaluate(omega, currents)
            return MultiChannelResult(
                omega_star=evaluation.omega,
                channel_currents=evaluation.channel_currents,
                evaluation=evaluation, feasible=False,
                runtime_seconds=watch.elapsed,
                evaluations=evaluator.solve_count,
                channel_names=list(assignment.channel_names))
        best_feasible = candidate
    else:
        best_feasible = x0

    tracker: Dict[str, Optional[np.ndarray]] = {"x": None}
    tracker_power = [np.inf]

    def tracked_power(x: np.ndarray) -> float:
        value = power(x)
        if margin(x) > 0.0 and value < tracker_power[0]:
            tracker_power[0] = value
            tracker["x"] = np.array(x, dtype=float)
        return value

    opt1 = minimize(tracked_power, best_feasible, method="SLSQP",
                    bounds=bounds,
                    constraints=[{"type": "ineq", "fun": margin}],
                    options={"maxiter": max_iterations, "ftol": 1e-7,
                             "eps": 1e-3})
    x_final = np.clip(opt1.x, 0.0, 1.0)
    if margin(x_final) <= 0.0 and tracker["x"] is not None:
        x_final = tracker["x"]
    elif tracker["x"] is not None \
            and tracker_power[0] < power(x_final):
        x_final = tracker["x"]

    omega, currents = to_physical(x_final)
    evaluation = evaluator.evaluate(omega, currents)
    return MultiChannelResult(
        omega_star=evaluation.omega,
        channel_currents=evaluation.channel_currents,
        evaluation=evaluation,
        feasible=evaluation.feasible,
        runtime_seconds=watch.elapsed,
        evaluations=evaluator.solve_count,
        channel_names=list(assignment.channel_names))


#: A sensible default channel split for the EV6 die: the integer core,
#: the floating-point cluster, and everything else that carries TECs.
EV6_DEFAULT_CHANNELS: Dict[str, List[str]] = {
    "int-core": ["IntExec", "IntReg", "IntQ", "IntMap", "LdStQ"],
    "fp-cluster": ["FPAdd", "FPMul", "FPReg", "FPQ", "FPMap"],
}
