"""The cooling-power optimization problem (Section 5.1).

:class:`CoolingProblem` is the fully-assembled instance: thermal model,
leakage model, one workload's dynamic power map, the fan power law, and
the limits (T_max, omega_max, I_TEC,max).  :func:`build_cooling_problem`
is the one-stop constructor that performs the whole Figure 5 flow — EV6
floorplan, Table 1 stack, TEC deployment over everything but the caches,
McPAT-substitute leakage calibration — and returns a ready problem for a
benchmark profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from ..constants import I_TEC_MAX, OMEGA_MAX, T_MAX
from ..errors import ConfigurationError
from ..fan import FanModel, HeatSinkFanConductance
from ..geometry import (
    CellCoverage,
    EV6_CACHE_UNITS,
    Floorplan,
    Grid,
    alpha21264_floorplan,
)
from ..leakage import CellLeakageModel, UnitLeakageSpec, build_cell_leakage
from ..leakage.calibrate import (
    calibrate_from_samples,
    mcpat_substitute_samples,
)
from ..materials import (
    PackageStack,
    baseline_package_stack,
    default_package_stack,
)
from ..power import BenchmarkProfile
from ..tec import TECArray, TECDevice, coverage_mask_excluding, \
    default_tec_device
from ..thermal import PackageModelConfig, PackageThermalModel, \
    build_package_model


@dataclass(frozen=True)
class ProblemLimits:
    """Optimization bounds and the thermal constraint (Section 6.1).

    Attributes:
        t_max: Maximum allowed chip temperature, K (Constraint 15).
        omega_max: Fan speed upper bound, rad/s (Constraint 16).
        i_tec_max: TEC current upper bound, A (Constraint 17).
    """

    t_max: float = T_MAX
    omega_max: float = OMEGA_MAX
    i_tec_max: float = I_TEC_MAX

    def __post_init__(self) -> None:
        if self.t_max <= 0.0:
            raise ConfigurationError("t_max must be in kelvin (> 0)")
        if self.omega_max <= 0.0:
            raise ConfigurationError("omega_max must be positive")
        if self.i_tec_max < 0.0:
            raise ConfigurationError("i_tec_max must be >= 0")


class CoolingProblem:
    """One workload's cooling optimization instance.

    Attributes:
        name: Workload label (benchmark name).
        model: Assembled package thermal model (with or without TECs).
        leakage: Chip leakage model.
        fan: Fan power law.
        dynamic_cell_power: Per-chip-cell maximum dynamic power, W.
        limits: Bounds and the thermal threshold.
        coverage: Unit/cell mapping (for reporting unit temperatures).
    """

    def __init__(self, name: str, model: PackageThermalModel,
                 leakage: CellLeakageModel, fan: FanModel,
                 dynamic_cell_power: np.ndarray,
                 limits: Optional[ProblemLimits] = None,
                 coverage: Optional[CellCoverage] = None,
                 fan_heat_fraction: float = 0.3):
        if not (0.0 <= fan_heat_fraction <= 1.0):
            raise ConfigurationError(
                f"fan_heat_fraction must be in [0, 1], got "
                f"{fan_heat_fraction}")
        self.name = name
        #: Share of fan electrical power recirculated onto the sink as
        #: heat (motor losses + air friction warming the intake stream).
        self.fan_heat_fraction = fan_heat_fraction
        self.model = model
        self.leakage = leakage
        self.fan = fan
        self.limits = limits or ProblemLimits()
        self.coverage = coverage
        power = np.asarray(dynamic_cell_power, dtype=float)
        if power.shape != (model.grid.cell_count,):
            raise ConfigurationError(
                f"dynamic_cell_power must have shape "
                f"({model.grid.cell_count},), got {power.shape}")
        if (power < 0.0).any():
            raise ConfigurationError("dynamic_cell_power must be >= 0")
        if leakage.cell_count != model.grid.cell_count:
            raise ConfigurationError(
                "Leakage model cell count does not match the grid")
        self._dynamic_cell_power = power
        if self.fan.omega_max != self.limits.omega_max:
            # Keep a single source of truth for the fan bound.
            self.fan = FanModel(fan.power_constant, self.limits.omega_max)
        self._baseline_i_max = 0.0 if model.tec_array is None \
            else self.limits.i_tec_max

    @property
    def has_tec(self) -> bool:
        """True when the problem's package includes a TEC array."""
        return self.model.tec_array is not None

    @property
    def current_upper_bound(self) -> float:
        """Effective TEC-current bound (0 for no-TEC packages)."""
        return self._baseline_i_max

    @property
    def total_dynamic_power(self) -> float:
        """Total chip dynamic power, W."""
        return float(self.dynamic_cell_power.sum())

    @property
    def dynamic_cell_power(self) -> np.ndarray:
        """Per-chip-cell maximum dynamic power, W (validated copy)."""
        return self._dynamic_cell_power

    def with_profile(self, profile: Union[BenchmarkProfile,
                                          Mapping[str, float]],
                     name: Optional[str] = None) -> "CoolingProblem":
        """New problem sharing this package but with another workload."""
        if self.coverage is None:
            raise ConfigurationError(
                "with_profile requires the problem to carry a CellCoverage")
        unit_power = profile.as_dict() \
            if isinstance(profile, BenchmarkProfile) else dict(profile)
        power_map = self.coverage.power_map(unit_power)
        label = name or (profile.name
                         if isinstance(profile, BenchmarkProfile)
                         else self.name)
        return CoolingProblem(label, self.model, self.leakage, self.fan,
                              power_map, self.limits, self.coverage,
                              self.fan_heat_fraction)


def build_cooling_problem(
    profile: Union[BenchmarkProfile, Mapping[str, float]],
    name: Optional[str] = None,
    with_tec: bool = True,
    floorplan: Optional[Floorplan] = None,
    grid_resolution: int = 16,
    stack: Optional[PackageStack] = None,
    tec_device: Optional[TECDevice] = None,
    tec_coverage_mask: Optional[np.ndarray] = None,
    sink_conductance: Optional[HeatSinkFanConductance] = None,
    fan: Optional[FanModel] = None,
    limits: Optional[ProblemLimits] = None,
    model_config: Optional[PackageModelConfig] = None,
    leakage: Optional[CellLeakageModel] = None,
) -> CoolingProblem:
    """Assemble the full Figure 5 evaluation flow for one workload.

    Defaults reproduce the paper's setup: EV6 floorplan on the Table 1
    stack, TECs tiling everything except the I/D caches, Equation (9)
    sink conductance, the 1.6e-7 W*s^3 fan, and McPAT-substitute leakage.

    Args:
        profile: Per-unit maximum dynamic power (a benchmark profile or a
            plain mapping).
        name: Workload label; defaults to the profile's name.
        with_tec: False builds the no-TEC baseline package, with the
            Section 6.1 TIM1 fairness correction applied.
        floorplan: Die floorplan; defaults to the EV6.
        grid_resolution: Cells per die edge (grid is resolution^2).
        stack: Package stack override.
        tec_device: TEC module type override.
        tec_coverage_mask: TEC deployment mask override; defaults to
            everything except the caches.
        sink_conductance: Equation (9) parameter override.
        fan: Fan model override.
        limits: Bounds/threshold override.
        model_config: Thermal model knobs override.
        leakage: Pre-built leakage model (skips McPAT-substitute
            calibration).
    """
    if grid_resolution < 2:
        raise ConfigurationError("grid_resolution must be >= 2")
    floorplan = floorplan or alpha21264_floorplan()
    grid = Grid.for_floorplan(floorplan, grid_resolution, grid_resolution)
    coverage = CellCoverage(floorplan, grid)
    limits = limits or ProblemLimits()

    box = floorplan.bounding_box
    if with_tec:
        stack = stack or default_package_stack(box.width, box.height)
        device = tec_device or default_tec_device()
        if tec_coverage_mask is None:
            exclusions = [u for u in EV6_CACHE_UNITS if u in floorplan]
            tec_coverage_mask = coverage_mask_excluding(coverage, exclusions)
        tec_array = TECArray(grid, device, tec_coverage_mask)
    else:
        stack = stack or baseline_package_stack(box.width, box.height)
        tec_array = None
        if stack.has_tec:
            raise ConfigurationError(
                "with_tec=False requires a stack without a TEC layer")

    model = build_package_model(stack, grid,
                                sink_conductance=sink_conductance,
                                tec_array=tec_array, config=model_config)

    if leakage is None:
        samples = mcpat_substitute_samples(floorplan)
        calibration = calibrate_from_samples(samples)
        leakage = build_cell_leakage(
            coverage,
            [UnitLeakageSpec(unit, power)
             for unit, power in calibration.unit_nominal.items()],
            calibration.beta, calibration.t_nominal)

    unit_power = profile.as_dict() \
        if isinstance(profile, BenchmarkProfile) else dict(profile)
    power_map = coverage.power_map(unit_power)
    label = name or (profile.name
                     if isinstance(profile, BenchmarkProfile)
                     else "workload")
    fan = fan or FanModel(omega_max=limits.omega_max)
    return CoolingProblem(label, model, leakage, fan, power_map, limits,
                          coverage)
