"""Nonlinear solvers for Optimization 1 and Optimization 2.

The paper experiments with three state-of-the-art CNLP techniques —
interior-point, trust-region, and active-set SQP — and picks active-set
SQP for quality and speed.  We expose the same menu:

* ``"slsqp"`` — SciPy's SLSQP, a sequential least-squares (active-set)
  QP method: the closest sibling of MATLAB's active-set SQP.  Default.
* ``"trust-constr"`` — SciPy's interior-point/trust-region method.
* ``"grid"`` — coarse grid search followed by an SLSQP polish; the
  robust fallback for heavily non-convex instances.

Both optimization variables are normalized to [0, 1] before the solver
sees them (omega spans hundreds of rad/s while I_TEC spans a few amperes;
unnormalized finite differences would be badly conditioned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import NonlinearConstraint, minimize

from ..errors import ConfigurationError, SolverError
from .evaluator import Evaluation, Evaluator

#: Supported solver backends.
SOLVER_METHODS = ("slsqp", "trust-constr", "grid")

#: Supported gradient modes: ``"analytic"`` feeds the evaluator's
#: adjoint gradients to the backend as ``jac=`` callables (one
#: transposed back-substitution per iterate); ``"fd"`` is the legacy
#: escape hatch that lets the backend finite-difference the objective
#: and constraints itself.
JAC_MODES = ("analytic", "fd")

#: Normalized finite-difference step; large enough to rise above the
#: relinearization-loop noise floor, small enough for curvature.
_FD_STEP = 1e-3

#: Strict-feasibility backoff (K) on the thermal constraint when the
#: backend consumes analytic Jacobians.  Exact gradients drive the
#: active-set method onto the margin = 0 boundary to machine precision,
#: where ``T == T_max`` reads as infeasible under the strict
#: ``𝒯 < T_max`` contract; backing the constraint off by a sliver
#: keeps the converged point strictly interior.  The power cost is the
#: constraint multiplier times the backoff — orders of magnitude below
#: solver tolerance.  (The finite-difference path keeps its legacy
#: unshifted constraint: its gradient noise already stops inside.)
_MARGIN_BACKOFF_K = 1e-4


def _check_jac(jac: str) -> None:
    if jac not in JAC_MODES:
        raise ConfigurationError(
            f"Unknown jac mode {jac!r}; choose one of {JAC_MODES}")


@dataclass
class OptimizationOutcome:
    """Result of one Optimization 1 or Optimization 2 run.

    Attributes:
        omega: Optimal fan speed, rad/s.
        current: Optimal TEC current, A.
        evaluation: Full evaluation at the optimum.
        success: Solver-reported success (early stops count as success).
        early_stopped: True if an Optimization 2 run stopped at the first
            point below the threshold (Algorithm 1 line 3).
        method: Backend used.
        evaluations: Thermal solves consumed by this run.
        message: Backend status message.
    """

    omega: float
    current: float
    evaluation: Evaluation
    success: bool
    early_stopped: bool
    method: str
    evaluations: int
    message: str = ""


class _EarlyStop(Exception):
    """Internal control flow for Algorithm 1's early termination."""

    def __init__(self, x: np.ndarray):
        super().__init__("early stop")
        self.x = x


class _NormalizedProblem:
    """Maps normalized x in [0,1]^d to physical (omega, I)."""

    def __init__(self, evaluator: Evaluator):
        self.evaluator = evaluator
        limits = evaluator.problem.limits
        self.omega_scale = limits.omega_max
        self.current_scale = evaluator.problem.current_upper_bound
        # A no-TEC problem is one-dimensional.
        self.dimensions = 2 if self.current_scale > 0.0 else 1

    def to_physical(self, x: Sequence[float]) -> Tuple[float, float]:
        omega = float(np.clip(x[0], 0.0, 1.0)) * self.omega_scale
        if self.dimensions == 2:
            current = float(np.clip(x[1], 0.0, 1.0)) * self.current_scale
        else:
            current = 0.0
        return omega, current

    def to_normalized(self, omega: float, current: float) -> np.ndarray:
        """Map a physical point — omega in rad/s, current in A — to
        the solver's dimensionless coordinates."""
        x = [omega / self.omega_scale]
        if self.dimensions == 2:
            x.append(current / self.current_scale)
        return np.array(x)

    def evaluate(self, x: Sequence[float]) -> Evaluation:
        omega, current = self.to_physical(x)
        return self.evaluator.evaluate(omega, current)

    # Normalization chain rule: the backend differentiates with respect
    # to x = (omega/omega_scale, I/current_scale), so each physical
    # slope is multiplied by its scale.  The [0,1] clip in to_physical
    # is transparent inside the box the backend's bounds enforce.

    def _chain(self, d_omega: float, d_current: float) -> np.ndarray:
        if self.dimensions == 2:
            return np.array([d_omega * self.omega_scale,
                             d_current * self.current_scale])
        return np.array([d_omega * self.omega_scale])

    def temperature_gradient(self, x: Sequence[float]) -> np.ndarray:
        """``d𝒯/dx`` in normalized coordinates (adjoint-backed)."""
        omega, current = self.to_physical(x)
        gradient = self.evaluator.evaluate_with_grad(
            omega, current).gradient
        return self._chain(gradient.d_temp_omega,
                           gradient.d_temp_current)

    def power_gradient(self, x: Sequence[float]) -> np.ndarray:
        """``d𝒫/dx`` in normalized coordinates (adjoint-backed)."""
        omega, current = self.to_physical(x)
        gradient = self.evaluator.evaluate_with_grad(
            omega, current).gradient
        return self._chain(gradient.d_power_omega,
                           gradient.d_power_current)

    def margin_gradient(self, x: Sequence[float]) -> np.ndarray:
        """``d(T_max - 𝒯)/dx`` in normalized coordinates."""
        return -self.temperature_gradient(x)


def _run_backend(
    norm: _NormalizedProblem,
    objective: Callable[[np.ndarray], float],
    x0: np.ndarray,
    method: str,
    constraint: Optional[Callable[[np.ndarray], float]] = None,
    max_iterations: int = 60,
    objective_grad: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    constraint_grad: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Tuple[np.ndarray, bool, str]:
    """Dispatch one local solve; returns (x_best, success, message).

    With gradient callables the backend consumes analytic Jacobians
    (``jac=`` on the objective, constraint Jacobians on the constraint
    specs); without them it finite-differences exactly as before — the
    ``eps``/``finite_diff_rel_step`` options are inert when every
    Jacobian is supplied.
    """
    bounds = [(0.0, 1.0)] * norm.dimensions
    if method == "slsqp":
        constraints = []
        if constraint is not None:
            spec = {"type": "ineq", "fun": constraint}
            if constraint_grad is not None:
                spec["jac"] = constraint_grad
            constraints.append(spec)
        result = _checked_minimize(
            objective, x0, method="SLSQP", bounds=bounds,
            jac=objective_grad, constraints=constraints,
            options={"maxiter": max_iterations, "ftol": 1e-7,
                     "eps": _FD_STEP})
        return result.x, bool(result.success), str(result.message)
    if method == "trust-constr":
        constraints = []
        if constraint is not None:
            if constraint_grad is not None:
                constraints.append(NonlinearConstraint(
                    constraint, 0.0, np.inf, jac=constraint_grad))
            else:
                constraints.append(NonlinearConstraint(
                    constraint, 0.0, np.inf))
        result = _checked_minimize(
            objective, x0, method="trust-constr", bounds=bounds,
            jac=objective_grad, constraints=constraints,
            options={"maxiter": max_iterations * 4, "xtol": 1e-6,
                     "finite_diff_rel_step": _FD_STEP})
        return result.x, bool(result.success), str(result.message)
    raise SolverError(f"Unknown solver method {method!r}; "
                      f"choose one of {SOLVER_METHODS}")


def _checked_minimize(objective, x0, **kwargs):
    """scipy.optimize.minimize with internal breakdowns mapped onto
    :class:`SolverError` so the resilience ladder can catch one typed
    failure instead of scipy's assorted numerics exceptions.

    Library exceptions (``ReproError`` subclasses, including the early
    stop control flow) pass through untouched.
    """
    try:
        return minimize(objective, x0, **kwargs)
    except (ValueError, ZeroDivisionError, FloatingPointError,
            np.linalg.LinAlgError) as exc:
        raise SolverError(
            f"{kwargs.get('method', 'backend')} solve broke down at "
            f"x0={np.asarray(x0)}: {exc}") from exc


def _grid_candidates(dimensions: int, points: int = 7) -> np.ndarray:
    """Normalized grid points (avoiding the exact 0 edge in omega)."""
    omega_axis = np.linspace(0.05, 1.0, points)
    if dimensions == 1:
        return omega_axis.reshape(-1, 1)
    current_axis = np.linspace(0.0, 1.0, points)
    grid = np.array([[w, i] for w in omega_axis for i in current_axis])
    return grid


def minimize_temperature(
    evaluator: Evaluator,
    x0: Optional[Tuple[float, float]] = None,
    method: str = "slsqp",
    early_stop_below: Optional[float] = None,
    max_iterations: int = 60,
    jac: str = "analytic",
) -> OptimizationOutcome:
    """Optimization 2: minimize 𝒯 subject to the box constraints.

    Args:
        evaluator: Problem oracle.
        x0: Physical initial point (omega, I); defaults to the paper's
            (omega_max/2, I_max/2).
        method: One of :data:`SOLVER_METHODS`.
        early_stop_below: If given, stop as soon as an iterate achieves
            𝒯 strictly below this value (Algorithm 1 line 3).
        max_iterations: Backend iteration budget.
        jac: One of :data:`JAC_MODES` — ``"analytic"`` (default) hands
            the backend adjoint gradients, ``"fd"`` restores the legacy
            backend finite differencing.
    """
    _check_jac(jac)
    norm = _NormalizedProblem(evaluator)
    solves_before = evaluator.solve_count
    if x0 is None:
        limits = evaluator.problem.limits
        x0 = (limits.omega_max / 2.0,
              evaluator.problem.current_upper_bound / 2.0)
    x0_n = norm.to_normalized(*x0)

    best: dict = {"t": np.inf, "x": x0_n.copy()}

    def objective(x: np.ndarray) -> float:
        t = norm.evaluate(x).max_chip_temperature
        if t < best["t"]:
            best["t"] = t
            best["x"] = np.array(x, dtype=float)
        if early_stop_below is not None and t < early_stop_below:
            raise _EarlyStop(np.array(x, dtype=float))
        return t

    objective_grad = norm.temperature_gradient \
        if jac == "analytic" else None
    early = False
    try:
        if method == "grid":
            x_best, success, message = _grid_then_polish(
                norm, objective, constraint=None,
                max_iterations=max_iterations,
                prefetch=early_stop_below is None,
                objective_grad=objective_grad)
        else:
            x_best, success, message = _run_backend(
                norm, objective, x0_n, method,
                max_iterations=max_iterations,
                objective_grad=objective_grad)
    except _EarlyStop as stop:
        x_best, success, message = stop.x, True, "early stop below T_max"
        early = True
    # Trust only the best *observed* iterate (solver may return a probe).
    final_t = norm.evaluate(x_best).max_chip_temperature
    if best["t"] < final_t:
        x_best = best["x"]
    omega, current = norm.to_physical(x_best)
    evaluation = evaluator.evaluate(omega, current)
    return OptimizationOutcome(
        omega=evaluation.omega, current=evaluation.current,
        evaluation=evaluation, success=success, early_stopped=early,
        method=method,
        evaluations=evaluator.solve_count - solves_before,
        message=message)


def minimize_power(
    evaluator: Evaluator,
    x0: Tuple[float, float],
    method: str = "slsqp",
    max_iterations: int = 60,
    jac: str = "analytic",
) -> OptimizationOutcome:
    """Optimization 1: minimize 𝒫 subject to 𝒯 < T_max and the boxes.

    ``x0`` must be a thermally feasible physical point — Algorithm 1
    guarantees one via Optimization 2 before calling this.  ``jac``
    selects the gradient mode (:data:`JAC_MODES`): analytic adjoint
    Jacobians for both the objective and the thermal-margin constraint,
    or the legacy backend finite differencing.
    """
    _check_jac(jac)
    norm = _NormalizedProblem(evaluator)
    solves_before = evaluator.solve_count
    x0_n = norm.to_normalized(*x0)
    t_max = evaluator.problem.limits.t_max

    best: dict = {"p": np.inf, "x": None}

    def objective(x: np.ndarray) -> float:
        evaluation = norm.evaluate(x)
        p = evaluation.total_power
        if evaluation.feasible and p < best["p"]:
            best["p"] = p
            best["x"] = np.array(x, dtype=float)
        return p

    backoff = _MARGIN_BACKOFF_K if jac == "analytic" else 0.0

    def margin(x: np.ndarray) -> float:
        # Positive inside the feasible region, in kelvin.  The backoff
        # is a constant shift, so margin_gradient stays exact.
        return t_max - backoff - norm.evaluate(x).max_chip_temperature

    if jac == "analytic":
        objective_grad = norm.power_gradient
        constraint_grad = norm.margin_gradient
    else:
        objective_grad = constraint_grad = None
    if method == "grid":
        x_best, success, message = _grid_then_polish(
            norm, objective, constraint=margin,
            max_iterations=max_iterations,
            objective_grad=objective_grad,
            constraint_grad=constraint_grad)
    else:
        x_best, success, message = _run_backend(
            norm, objective, x0_n, method, constraint=margin,
            max_iterations=max_iterations,
            objective_grad=objective_grad,
            constraint_grad=constraint_grad)
    # Prefer the best feasible iterate seen over the solver's return
    # value when the latter is infeasible or worse.
    final = norm.evaluate(x_best)
    if best["x"] is not None and (not final.feasible
                                  or best["p"] < final.total_power):
        x_best = best["x"]
    omega, current = norm.to_physical(x_best)
    evaluation = evaluator.evaluate(omega, current)
    return OptimizationOutcome(
        omega=evaluation.omega, current=evaluation.current,
        evaluation=evaluation, success=success, early_stopped=False,
        method=method,
        evaluations=evaluator.solve_count - solves_before,
        message=message)


def _grid_then_polish(
    norm: _NormalizedProblem,
    objective: Callable[[np.ndarray], float],
    constraint: Optional[Callable[[np.ndarray], float]],
    max_iterations: int,
    prefetch: bool = True,
    objective_grad: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    constraint_grad: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Tuple[np.ndarray, bool, str]:
    """Coarse grid scan, then SLSQP from the best grid point."""
    candidates = _grid_candidates(norm.dimensions)
    if prefetch:
        # Warm the evaluator cache through the batched entry point (one
        # grouped solve per distinct system matrix); the scan below then
        # reads cached evaluations.  Skipped when the objective can
        # early-stop, where the scan must not probe past the stop point.
        # workers=0 opts out of the REPRO_WORKERS fan-out: worker-side
        # evaluations would be discarded, leaving this cache cold and
        # the solve counters perturbed.
        norm.evaluator.evaluate_many(
            [norm.to_physical(x) for x in candidates], workers=0)
    best_x = None
    best_val = np.inf
    for x in candidates:
        value = objective(x)
        if constraint is not None and constraint(x) <= 0.0:
            continue
        if value < best_val:
            best_val = value
            best_x = x
    if best_x is None:
        # Nothing feasible on the coarse grid: fall back to the least
        # infeasible point so the polish step has somewhere to start.
        best_x = min(candidates,
                     key=lambda x: -constraint(x) if constraint else 0.0)
    return _run_backend(norm, objective, np.asarray(best_x), "slsqp",
                        constraint=constraint,
                        max_iterations=max_iterations,
                        objective_grad=objective_grad,
                        constraint_grad=constraint_grad)
