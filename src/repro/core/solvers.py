"""Nonlinear solvers for Optimization 1 and Optimization 2.

The paper experiments with three state-of-the-art CNLP techniques —
interior-point, trust-region, and active-set SQP — and picks active-set
SQP for quality and speed.  We expose the same menu:

* ``"slsqp"`` — SciPy's SLSQP, a sequential least-squares (active-set)
  QP method: the closest sibling of MATLAB's active-set SQP.  Default.
* ``"trust-constr"`` — SciPy's interior-point/trust-region method.
* ``"grid"`` — coarse grid search followed by an SLSQP polish; the
  robust fallback for heavily non-convex instances.

Both optimization variables are normalized to [0, 1] before the solver
sees them (omega spans hundreds of rad/s while I_TEC spans a few amperes;
unnormalized finite differences would be badly conditioned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import NonlinearConstraint, minimize

from ..errors import SolverError
from .evaluator import Evaluation, Evaluator

#: Supported solver backends.
SOLVER_METHODS = ("slsqp", "trust-constr", "grid")

#: Normalized finite-difference step; large enough to rise above the
#: relinearization-loop noise floor, small enough for curvature.
_FD_STEP = 1e-3


@dataclass
class OptimizationOutcome:
    """Result of one Optimization 1 or Optimization 2 run.

    Attributes:
        omega: Optimal fan speed, rad/s.
        current: Optimal TEC current, A.
        evaluation: Full evaluation at the optimum.
        success: Solver-reported success (early stops count as success).
        early_stopped: True if an Optimization 2 run stopped at the first
            point below the threshold (Algorithm 1 line 3).
        method: Backend used.
        evaluations: Thermal solves consumed by this run.
        message: Backend status message.
    """

    omega: float
    current: float
    evaluation: Evaluation
    success: bool
    early_stopped: bool
    method: str
    evaluations: int
    message: str = ""


class _EarlyStop(Exception):
    """Internal control flow for Algorithm 1's early termination."""

    def __init__(self, x: np.ndarray):
        super().__init__("early stop")
        self.x = x


class _NormalizedProblem:
    """Maps normalized x in [0,1]^d to physical (omega, I)."""

    def __init__(self, evaluator: Evaluator):
        self.evaluator = evaluator
        limits = evaluator.problem.limits
        self.omega_scale = limits.omega_max
        self.current_scale = evaluator.problem.current_upper_bound
        # A no-TEC problem is one-dimensional.
        self.dimensions = 2 if self.current_scale > 0.0 else 1

    def to_physical(self, x: Sequence[float]) -> Tuple[float, float]:
        omega = float(np.clip(x[0], 0.0, 1.0)) * self.omega_scale
        if self.dimensions == 2:
            current = float(np.clip(x[1], 0.0, 1.0)) * self.current_scale
        else:
            current = 0.0
        return omega, current

    def to_normalized(self, omega: float, current: float) -> np.ndarray:
        """Map a physical point — omega in rad/s, current in A — to
        the solver's dimensionless coordinates."""
        x = [omega / self.omega_scale]
        if self.dimensions == 2:
            x.append(current / self.current_scale)
        return np.array(x)

    def evaluate(self, x: Sequence[float]) -> Evaluation:
        omega, current = self.to_physical(x)
        return self.evaluator.evaluate(omega, current)


def _run_backend(
    norm: _NormalizedProblem,
    objective: Callable[[np.ndarray], float],
    x0: np.ndarray,
    method: str,
    constraint: Optional[Callable[[np.ndarray], float]] = None,
    max_iterations: int = 60,
) -> Tuple[np.ndarray, bool, str]:
    """Dispatch one local solve; returns (x_best, success, message)."""
    bounds = [(0.0, 1.0)] * norm.dimensions
    if method == "slsqp":
        constraints = []
        if constraint is not None:
            constraints.append({"type": "ineq", "fun": constraint})
        result = _checked_minimize(
            objective, x0, method="SLSQP", bounds=bounds,
            constraints=constraints,
            options={"maxiter": max_iterations, "ftol": 1e-7,
                     "eps": _FD_STEP})
        return result.x, bool(result.success), str(result.message)
    if method == "trust-constr":
        constraints = []
        if constraint is not None:
            constraints.append(NonlinearConstraint(
                constraint, 0.0, np.inf))
        result = _checked_minimize(
            objective, x0, method="trust-constr", bounds=bounds,
            constraints=constraints,
            options={"maxiter": max_iterations * 4, "xtol": 1e-6,
                     "finite_diff_rel_step": _FD_STEP})
        return result.x, bool(result.success), str(result.message)
    raise SolverError(f"Unknown solver method {method!r}; "
                      f"choose one of {SOLVER_METHODS}")


def _checked_minimize(objective, x0, **kwargs):
    """scipy.optimize.minimize with internal breakdowns mapped onto
    :class:`SolverError` so the resilience ladder can catch one typed
    failure instead of scipy's assorted numerics exceptions.

    Library exceptions (``ReproError`` subclasses, including the early
    stop control flow) pass through untouched.
    """
    try:
        return minimize(objective, x0, **kwargs)
    except (ValueError, ZeroDivisionError, FloatingPointError,
            np.linalg.LinAlgError) as exc:
        raise SolverError(
            f"{kwargs.get('method', 'backend')} solve broke down at "
            f"x0={np.asarray(x0)}: {exc}") from exc


def _grid_candidates(dimensions: int, points: int = 7) -> np.ndarray:
    """Normalized grid points (avoiding the exact 0 edge in omega)."""
    omega_axis = np.linspace(0.05, 1.0, points)
    if dimensions == 1:
        return omega_axis.reshape(-1, 1)
    current_axis = np.linspace(0.0, 1.0, points)
    grid = np.array([[w, i] for w in omega_axis for i in current_axis])
    return grid


def minimize_temperature(
    evaluator: Evaluator,
    x0: Optional[Tuple[float, float]] = None,
    method: str = "slsqp",
    early_stop_below: Optional[float] = None,
    max_iterations: int = 60,
) -> OptimizationOutcome:
    """Optimization 2: minimize 𝒯 subject to the box constraints.

    Args:
        evaluator: Problem oracle.
        x0: Physical initial point (omega, I); defaults to the paper's
            (omega_max/2, I_max/2).
        method: One of :data:`SOLVER_METHODS`.
        early_stop_below: If given, stop as soon as an iterate achieves
            𝒯 strictly below this value (Algorithm 1 line 3).
        max_iterations: Backend iteration budget.
    """
    norm = _NormalizedProblem(evaluator)
    solves_before = evaluator.solve_count
    if x0 is None:
        limits = evaluator.problem.limits
        x0 = (limits.omega_max / 2.0,
              evaluator.problem.current_upper_bound / 2.0)
    x0_n = norm.to_normalized(*x0)

    best: dict = {"t": np.inf, "x": x0_n.copy()}

    def objective(x: np.ndarray) -> float:
        t = norm.evaluate(x).max_chip_temperature
        if t < best["t"]:
            best["t"] = t
            best["x"] = np.array(x, dtype=float)
        if early_stop_below is not None and t < early_stop_below:
            raise _EarlyStop(np.array(x, dtype=float))
        return t

    early = False
    try:
        if method == "grid":
            x_best, success, message = _grid_then_polish(
                norm, objective, constraint=None,
                max_iterations=max_iterations,
                prefetch=early_stop_below is None)
        else:
            x_best, success, message = _run_backend(
                norm, objective, x0_n, method,
                max_iterations=max_iterations)
    except _EarlyStop as stop:
        x_best, success, message = stop.x, True, "early stop below T_max"
        early = True
    # Trust only the best *observed* iterate (solver may return a probe).
    final_t = norm.evaluate(x_best).max_chip_temperature
    if best["t"] < final_t:
        x_best = best["x"]
    omega, current = norm.to_physical(x_best)
    evaluation = evaluator.evaluate(omega, current)
    return OptimizationOutcome(
        omega=evaluation.omega, current=evaluation.current,
        evaluation=evaluation, success=success, early_stopped=early,
        method=method,
        evaluations=evaluator.solve_count - solves_before,
        message=message)


def minimize_power(
    evaluator: Evaluator,
    x0: Tuple[float, float],
    method: str = "slsqp",
    max_iterations: int = 60,
) -> OptimizationOutcome:
    """Optimization 1: minimize 𝒫 subject to 𝒯 < T_max and the boxes.

    ``x0`` must be a thermally feasible physical point — Algorithm 1
    guarantees one via Optimization 2 before calling this.
    """
    norm = _NormalizedProblem(evaluator)
    solves_before = evaluator.solve_count
    x0_n = norm.to_normalized(*x0)
    t_max = evaluator.problem.limits.t_max

    best: dict = {"p": np.inf, "x": None}

    def objective(x: np.ndarray) -> float:
        evaluation = norm.evaluate(x)
        p = evaluation.total_power
        if evaluation.feasible and p < best["p"]:
            best["p"] = p
            best["x"] = np.array(x, dtype=float)
        return p

    def margin(x: np.ndarray) -> float:
        # Positive inside the feasible region, in kelvin.
        return t_max - norm.evaluate(x).max_chip_temperature

    if method == "grid":
        x_best, success, message = _grid_then_polish(
            norm, objective, constraint=margin,
            max_iterations=max_iterations)
    else:
        x_best, success, message = _run_backend(
            norm, objective, x0_n, method, constraint=margin,
            max_iterations=max_iterations)
    # Prefer the best feasible iterate seen over the solver's return
    # value when the latter is infeasible or worse.
    final = norm.evaluate(x_best)
    if best["x"] is not None and (not final.feasible
                                  or best["p"] < final.total_power):
        x_best = best["x"]
    omega, current = norm.to_physical(x_best)
    evaluation = evaluator.evaluate(omega, current)
    return OptimizationOutcome(
        omega=evaluation.omega, current=evaluation.current,
        evaluation=evaluation, success=success, early_stopped=False,
        method=method,
        evaluations=evaluator.solve_count - solves_before,
        message=message)


def _grid_then_polish(
    norm: _NormalizedProblem,
    objective: Callable[[np.ndarray], float],
    constraint: Optional[Callable[[np.ndarray], float]],
    max_iterations: int,
    prefetch: bool = True,
) -> Tuple[np.ndarray, bool, str]:
    """Coarse grid scan, then SLSQP from the best grid point."""
    candidates = _grid_candidates(norm.dimensions)
    if prefetch:
        # Warm the evaluator cache through the batched entry point (one
        # grouped solve per distinct system matrix); the scan below then
        # reads cached evaluations.  Skipped when the objective can
        # early-stop, where the scan must not probe past the stop point.
        # workers=0 opts out of the REPRO_WORKERS fan-out: worker-side
        # evaluations would be discarded, leaving this cache cold and
        # the solve counters perturbed.
        norm.evaluator.evaluate_many(
            [norm.to_physical(x) for x in candidates], workers=0)
    best_x = None
    best_val = np.inf
    for x in candidates:
        value = objective(x)
        if constraint is not None and constraint(x) <= 0.0:
            continue
        if value < best_val:
            best_val = value
            best_x = x
    if best_x is None:
        # Nothing feasible on the coarse grid: fall back to the least
        # infeasible point so the polish step has somewhere to start.
        best_x = min(candidates,
                     key=lambda x: -constraint(x) if constraint else 0.0)
    return _run_backend(norm, objective, np.asarray(best_x), "slsqp",
                        constraint=constraint,
                        max_iterations=max_iterations)
