"""OFTEC core: the paper's contribution.

:class:`CoolingProblem` bundles the package thermal model, leakage
calibration, and a workload's dynamic power map with the optimization
limits; :class:`Evaluator` turns an operating point ``(omega, I_TEC)``
into the paper's two objectives (𝒯, max die temperature, and 𝒫, total
cooling-related power); :mod:`repro.core.solvers` implements
Optimization 1 and Optimization 2 with the active-set SQP backend (plus
the interior-point and grid-search comparison methods); and
:func:`run_oftec` is Algorithm 1.  Baseline controllers (variable-speed
fan, fixed-speed fan, TEC-only) and the forward-looking controllers the
paper sketches (lookup-table, transient boost, threshold/hysteresis) live
alongside.
"""

from .problem import CoolingProblem, ProblemLimits, build_cooling_problem
from .evaluator import Evaluation, EvaluationGradient, Evaluator
from .solvers import (
    JAC_MODES,
    OptimizationOutcome,
    minimize_power,
    minimize_temperature,
    SOLVER_METHODS,
)
from .oftec import OFTECResult, run_oftec
from .baselines import (
    BaselineResult,
    run_fixed_fan_baseline,
    run_tec_only,
    run_variable_fan_baseline,
)
from .lut import LookupTableController, LUTEntry
from .boost import TransientBoostPlan, plan_transient_boost
from .thresholds import (
    ThresholdControllerResult,
    run_hysteresis_controller,
    run_threshold_controller,
)
from .multichannel import (
    ChannelAssignment,
    EV6_DEFAULT_CHANNELS,
    MultiChannelEvaluator,
    MultiChannelResult,
    run_oftec_multichannel,
)
from .dvfs import (
    DVFSModel,
    ThrottleResult,
    find_max_frequency,
    scaled_problem,
)
from .resilient import (
    AttemptRecord,
    FailureReport,
    ResiliencePolicy,
    ResilientOFTECResult,
    ResilientOutcome,
    ResilientSolver,
    failure_report_from_exception,
    run_oftec_resilient,
)
from .robust import EnvelopeEvaluator, RobustResult, run_oftec_robust
from .placement import (
    CMP4_ADJACENCY,
    PlacementResult,
    optimize_thread_placement,
    placement_spread_score,
)
from .online import (
    IntervalDecision,
    OnlineControlResult,
    lut_policy,
    reoptimize_policy,
    run_online_controller,
    static_policy,
)

__all__ = [
    "CoolingProblem",
    "ProblemLimits",
    "build_cooling_problem",
    "Evaluation",
    "EvaluationGradient",
    "Evaluator",
    "JAC_MODES",
    "OptimizationOutcome",
    "minimize_power",
    "minimize_temperature",
    "SOLVER_METHODS",
    "OFTECResult",
    "run_oftec",
    "BaselineResult",
    "run_variable_fan_baseline",
    "run_fixed_fan_baseline",
    "run_tec_only",
    "LookupTableController",
    "LUTEntry",
    "TransientBoostPlan",
    "plan_transient_boost",
    "ThresholdControllerResult",
    "run_threshold_controller",
    "run_hysteresis_controller",
    "ChannelAssignment",
    "EV6_DEFAULT_CHANNELS",
    "MultiChannelEvaluator",
    "MultiChannelResult",
    "run_oftec_multichannel",
    "DVFSModel",
    "ThrottleResult",
    "find_max_frequency",
    "scaled_problem",
    "AttemptRecord",
    "FailureReport",
    "ResiliencePolicy",
    "ResilientOFTECResult",
    "ResilientOutcome",
    "ResilientSolver",
    "failure_report_from_exception",
    "run_oftec_resilient",
    "EnvelopeEvaluator",
    "RobustResult",
    "run_oftec_robust",
    "CMP4_ADJACENCY",
    "PlacementResult",
    "optimize_thread_placement",
    "placement_spread_score",
    "IntervalDecision",
    "OnlineControlResult",
    "static_policy",
    "lut_policy",
    "reoptimize_policy",
    "run_online_controller",
]
