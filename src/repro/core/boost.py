"""Transient TEC boost (Section 6.2 / reference [8] of the paper).

Thin-film TECs can over-pump for short intervals: the Peltier effect acts
immediately at the cold junction while Joule heat arrives at the die with
the package's thermal time constant.  The paper suggests raising
``I*_TEC`` by about 1 A for about 1 s — e.g. to bridge the interval while
OFTEC's next solution is being computed.  :func:`plan_transient_boost`
builds the corresponding schedules for
:func:`repro.thermal.simulate_transient`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError
from .oftec import OFTECResult
from .problem import CoolingProblem


@dataclass
class TransientBoostPlan:
    """Boost schedule around a steady OFTEC operating point.

    Attributes:
        omega: Constant fan speed, rad/s.
        base_current: Steady current ``I*``, A.
        boost_current: Current applied during the boost window, A.
        boost_duration: Boost window length, s.
    """

    omega: float
    base_current: float
    boost_current: float
    boost_duration: float

    def current_schedule(self) -> Callable[[float], float]:
        """Current as a function of time: boosted, then steady."""
        def schedule(t: float) -> float:
            return self.boost_current if t <= self.boost_duration \
                else self.base_current
        return schedule

    def omega_schedule(self) -> Callable[[float], float]:
        """Fan speed as a function of time (constant)."""
        omega = self.omega

        def schedule(_t: float) -> float:
            return omega
        return schedule

    @property
    def extra_current(self) -> float:
        """Boost magnitude above the steady current, A."""
        return self.boost_current - self.base_current


def plan_transient_boost(
    problem: CoolingProblem,
    oftec_result: OFTECResult,
    extra_current: float = 1.0,
    duration: float = 1.0,
) -> TransientBoostPlan:
    """Build the paper's "+1 A for 1 s" boost plan at an OFTEC optimum.

    The boosted current is clamped to the device's safe limit
    (Constraint 17 still applies instantaneously).
    """
    if extra_current < 0.0:
        raise ConfigurationError("extra_current must be >= 0")
    if duration <= 0.0:
        raise ConfigurationError("duration must be positive")
    if not problem.has_tec:
        raise ConfigurationError(
            "Transient boost requires a TEC-equipped problem")
    boosted = min(oftec_result.current_star + extra_current,
                  problem.limits.i_tec_max)
    return TransientBoostPlan(
        omega=oftec_result.omega_star,
        base_current=oftec_result.current_star,
        boost_current=boosted,
        boost_duration=duration)
