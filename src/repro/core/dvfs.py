"""DVFS fallback: frequency throttling when cooling alone cannot win.

Section 6.2 of the paper: the benchmarks the baselines cannot cool
"should be further cooled down using other thermal management techniques
such as reducing the voltage/frequency of the chip or throttling
different functional units which leads to performance degradation".
This module quantifies that cost — the performance a no-TEC system must
give up that OFTEC's hybrid cooling avoids.

Model: at relative frequency ``s`` (1.0 = nominal) the supply voltage
scales linearly between ``v_floor`` and 1.0, so dynamic power scales as

    P_dyn(s) = P_dyn(1) * s * (v_floor + (1 - v_floor) * s)^2

— the classic f*V^2 law with a voltage floor (leakage is temperature-
driven and handled by the thermal model).  Performance is proportional
to ``s``.  :func:`find_max_frequency` binary-searches the largest
feasible ``s`` for a given cooling controller.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigurationError, ReproError
from .baselines import run_variable_fan_baseline
from .oftec import run_oftec
from .problem import CoolingProblem


@dataclass(frozen=True)
class DVFSModel:
    """Voltage/frequency scaling law.

    Attributes:
        v_floor: Relative supply voltage at s -> 0 (near-threshold
            floor); typical planning value 0.6.
        s_min: Lowest usable relative frequency.
    """

    v_floor: float = 0.6
    s_min: float = 0.3

    def __post_init__(self) -> None:
        if not (0.0 < self.v_floor <= 1.0):
            raise ConfigurationError("v_floor must be in (0, 1]")
        if not (0.0 < self.s_min <= 1.0):
            raise ConfigurationError("s_min must be in (0, 1]")

    def voltage(self, scaling: float) -> float:
        """Relative supply voltage at relative frequency ``scaling``."""
        self._check(scaling)
        return self.v_floor + (1.0 - self.v_floor) * scaling

    def dynamic_power_factor(self, scaling: float) -> float:
        """Dynamic-power multiplier at relative frequency ``scaling``."""
        self._check(scaling)
        return scaling * self.voltage(scaling) ** 2

    def _check(self, scaling: float) -> None:
        if not (0.0 <= scaling <= 1.0):
            raise ConfigurationError(
                f"Relative frequency must be in [0, 1], got {scaling}")


@dataclass
class ThrottleResult:
    """Outcome of the max-frequency search for one cooling controller.

    Attributes:
        scaling: Largest feasible relative frequency found.
        performance_loss: ``1 - scaling`` (throughput given up).
        feasible: Whether *any* frequency in [s_min, 1] was coolable.
        power_at_scaling: Total cooling-related power at the found
            operating point, W (NaN when infeasible).
        runtime_seconds: Search wall-clock time.
        evaluations: Cooling-controller invocations performed.
    """

    scaling: float
    performance_loss: float
    feasible: bool
    power_at_scaling: float
    runtime_seconds: float
    evaluations: int
    #: Cooling-controller invocations that raised a ReproError and were
    #: treated as "not coolable at this frequency" (see
    #: :func:`find_max_frequency`'s error handling).
    errors: int = 0


CoolingRunner = Callable[[CoolingProblem], "object"]


@dataclass(frozen=True)
class _FailedCooling:
    """Sentinel outcome for a cooling run that raised: never feasible.

    The DVFS search exploits monotonicity, so a solver breakdown at
    frequency ``s`` is safely treated as "cannot cool at ``s``" — the
    search simply throttles further instead of aborting.
    """

    feasible: bool = False
    total_power: float = float("nan")


def _default_runner(problem: CoolingProblem):
    """Run the matching controller for the problem's package."""
    if problem.has_tec:
        return run_oftec(problem)
    return run_variable_fan_baseline(problem)


def scaled_problem(problem: CoolingProblem, model: DVFSModel,
                   scaling: float) -> CoolingProblem:
    """The same workload at relative frequency ``scaling``."""
    factor = model.dynamic_power_factor(scaling)
    if problem.coverage is None:
        raise ConfigurationError(
            "DVFS scaling requires the problem's CellCoverage")
    from .problem import CoolingProblem as _CP
    return _CP(f"{problem.name}@{scaling:.3f}", problem.model,
               problem.leakage, problem.fan,
               problem.dynamic_cell_power * factor, problem.limits,
               problem.coverage, problem.fan_heat_fraction)


def find_max_frequency(
    problem: CoolingProblem,
    dvfs: Optional[DVFSModel] = None,
    runner: Optional[CoolingRunner] = None,
    tolerance: float = 0.01,
) -> ThrottleResult:
    """Binary-search the largest coolable relative frequency.

    Args:
        problem: The workload at nominal frequency (TEC or baseline
            package; the matching controller is chosen automatically
            unless ``runner`` overrides it).
        dvfs: Scaling law (defaults to the 0.6-voltage-floor model).
        runner: Cooling controller; must return an object with a
            ``feasible`` attribute and a ``total_power`` property.
        tolerance: Terminal width of the frequency bracket.

    The search exploits monotonicity: less frequency means less dynamic
    power means an easier cooling problem.
    """
    if not (0.0 < tolerance < 1.0):
        raise ConfigurationError("tolerance must be in (0, 1)")
    dvfs = dvfs or DVFSModel()
    runner = runner or _default_runner
    start = time.perf_counter()
    evaluations = 0
    errors = 0

    def coolable(scaling: float):
        nonlocal evaluations, errors
        evaluations += 1
        scaled = scaled_problem(problem, dvfs, scaling)
        try:
            return runner(scaled)
        except ReproError:
            # A breakdown while trying to cool at this frequency means
            # this frequency is not demonstrably coolable; degrade the
            # bracket rather than the whole search.
            errors += 1
            return _FailedCooling()

    # Fast path: nominal frequency already coolable.
    nominal = coolable(1.0)
    if nominal.feasible:
        return ThrottleResult(
            scaling=1.0, performance_loss=0.0, feasible=True,
            power_at_scaling=nominal.total_power,
            runtime_seconds=time.perf_counter() - start,
            evaluations=evaluations, errors=errors)

    # Infeasible even at the lowest usable frequency: thermal design
    # failure regardless of DVFS.
    floor = coolable(dvfs.s_min)
    if not floor.feasible:
        return ThrottleResult(
            scaling=dvfs.s_min, performance_loss=1.0 - dvfs.s_min,
            feasible=False, power_at_scaling=float("nan"),
            runtime_seconds=time.perf_counter() - start,
            evaluations=evaluations, errors=errors)

    lo, hi = dvfs.s_min, 1.0        # lo coolable, hi not
    best = floor
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        result = coolable(mid)
        if result.feasible:
            lo, best = mid, result
        else:
            hi = mid
    return ThrottleResult(
        scaling=lo, performance_loss=1.0 - lo, feasible=True,
        power_at_scaling=best.total_power,
        runtime_seconds=time.perf_counter() - start,
        evaluations=evaluations, errors=errors)
