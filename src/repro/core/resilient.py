"""Resilient solve pipeline: fallback ladder, retries, degradation.

One pathological benchmark must not sink an eight-benchmark campaign.
This module wraps the Optimization 1/2 solvers of
:mod:`repro.core.solvers` with the defensive machinery a long unattended
run needs:

* a **fallback ladder** — try ``slsqp``, then ``trust-constr``, then the
  ``grid`` scan; each rung gets a bounded number of retries from
  deterministically perturbed warm restarts;
* a **per-attempt evaluation budget** — every attempt runs under
  :meth:`repro.core.Evaluator.set_solve_budget` so a stuck line search
  raises :class:`~repro.errors.EvaluationBudgetError` instead of
  spinning;
* **graceful degradation** — when no cooling configuration is feasible,
  :func:`run_oftec_resilient` falls back to the DVFS throttling search
  of :mod:`repro.core.dvfs`, quantifying the performance the system must
  give up (the paper's Section 6.2 remedy);
* **structured post-mortems** — every hard failure is condensed into a
  :class:`FailureReport` (stage, attempts, exception chain, last
  iterate, condition estimate) instead of a traceback.

Nothing here changes the numerics of a healthy solve: the first ladder
rung starts from the unperturbed initial point with the same iteration
budget as the plain solvers, so fault-free results are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    ReproError,
    SingularNetworkError,
    SolverError,
)
from ..obs import runtime as _obs
from ..obs.clock import stopwatch
from .dvfs import DVFSModel, ThrottleResult, find_max_frequency
from .evaluator import Evaluation, Evaluator
from .oftec import OFTECResult, initial_operating_point
from .problem import CoolingProblem
from .solvers import (
    SOLVER_METHODS,
    OptimizationOutcome,
    minimize_power,
    minimize_temperature,
)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the fallback ladder.

    Attributes:
        ladder: Solver backends to try, in order (each must be one of
            :data:`repro.core.SOLVER_METHODS`).
        retries_per_method: Extra perturbed-restart attempts per rung
            after the first (0 disables retries).
        restart_perturbation: Relative amplitude of the deterministic
            warm-restart jitter, as a fraction of each variable's range.
        seed: Seed of the restart-perturbation stream.
        max_evaluations: Per-attempt thermal-solve budget (cache hits
            are free).
        max_iterations: Per-attempt backend iteration budget.
        degrade_to_dvfs: Fall back to frequency throttling when no
            cooling configuration is feasible.
        dvfs_tolerance: Bracket width of the degradation-path frequency
            search (coarse by design: this is a salvage estimate).
    """

    ladder: Tuple[str, ...] = ("slsqp", "trust-constr", "grid")
    retries_per_method: int = 1
    restart_perturbation: float = 0.05
    seed: int = 0
    max_evaluations: int = 500
    max_iterations: int = 60
    degrade_to_dvfs: bool = True
    dvfs_tolerance: float = 0.2

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ConfigurationError("ladder must not be empty")
        for method in self.ladder:
            if method not in SOLVER_METHODS:
                raise ConfigurationError(
                    f"Unknown ladder rung {method!r}; choose from "
                    f"{SOLVER_METHODS}")
        if self.retries_per_method < 0:
            raise ConfigurationError(
                "retries_per_method must be >= 0, got "
                f"{self.retries_per_method}")
        if not (0.0 <= self.restart_perturbation <= 0.5):
            raise ConfigurationError(
                "restart_perturbation must be in [0, 0.5], got "
                f"{self.restart_perturbation}")
        if self.max_evaluations <= 0:
            raise ConfigurationError(
                f"max_evaluations must be positive, got "
                f"{self.max_evaluations}")
        if self.max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got "
                f"{self.max_iterations}")
        if not (0.0 < self.dvfs_tolerance < 1.0):
            raise ConfigurationError(
                f"dvfs_tolerance must be in (0, 1), got "
                f"{self.dvfs_tolerance}")


@dataclass(frozen=True)
class AttemptRecord:
    """One ladder attempt, successful or not.

    Attributes:
        method: Backend used for this attempt.
        retry: 0 for the rung's first attempt, 1.. for perturbed
            restarts.
        success: Backend-reported success.
        error_type: Exception class name when the attempt raised,
            else None.
        message: Backend status message or exception text.
        evaluations: Thermal solves this attempt consumed.
        factorizations: Sparse LU factorizations this attempt consumed
            (strictly less than ``evaluations`` when the operator
            layer's factor cache is pulling its weight).
    """

    method: str
    retry: int
    success: bool
    error_type: Optional[str]
    message: str
    evaluations: int
    factorizations: int = 0


@dataclass
class FailureReport:
    """Structured post-mortem of one failed stage.

    Attributes:
        benchmark: Workload label.
        stage: Pipeline stage that failed (e.g. ``"minimize-power"``,
            ``"oftec-opt2"``, ``"dvfs-degrade"``).
        error_type: Class name of the terminal exception.
        message: Terminal exception text.
        exception_chain: ``"Type: message"`` lines walking the
            ``__cause__``/``__context__`` chain, outermost first.
        attempts: Ladder attempts leading up to the failure.
        last_iterate: Physical ``(omega, I)`` the stage last worked
            from, when known.
        condition_estimate: 1-norm condition estimate recovered from a
            :class:`~repro.errors.SingularNetworkError` in the chain,
            when present.
        trace_excerpt: Rendered lines of the most recent spans of the
            active tracer at report time (empty when telemetry is
            disabled) — the failing attempt's local history.
    """

    benchmark: str
    stage: str
    error_type: str
    message: str
    exception_chain: List[str]
    attempts: List[AttemptRecord] = field(default_factory=list)
    last_iterate: Optional[Tuple[float, float]] = None
    condition_estimate: Optional[float] = None
    trace_excerpt: List[str] = field(default_factory=list)


def failure_report_from_exception(
    benchmark: str,
    stage: str,
    exc: BaseException,
    attempts: Sequence[AttemptRecord] = (),
    last_iterate: Optional[Tuple[float, float]] = None,
) -> FailureReport:
    """Condense an exception (and its cause chain) into a report.

    When a telemetry session is active, the report also captures the
    tracer's excerpt of the most recent spans, so every caller (the
    ladder, the campaign isolator, the chaos harness) gets the failing
    attempt's trace context for free.
    """
    chain: List[str] = []
    condition: Optional[float] = None
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        if condition is None and isinstance(current,
                                            SingularNetworkError):
            condition = current.condition_estimate
        current = current.__cause__ or current.__context__
    excerpt: List[str] = []
    if _obs.STATE.enabled:
        excerpt = _obs.STATE.tracer.excerpt()
    return FailureReport(
        benchmark=benchmark,
        stage=stage,
        error_type=type(exc).__name__,
        message=str(exc),
        exception_chain=chain,
        attempts=list(attempts),
        last_iterate=last_iterate,
        condition_estimate=condition,
        trace_excerpt=excerpt)


@dataclass
class ResilientOutcome:
    """What a resilient solve produced.

    Attributes:
        outcome: Best optimization outcome across all attempts, or None
            when every attempt raised.
        attempts: All attempts, in ladder order.
        failure: Post-mortem report when ``outcome`` is None.
    """

    outcome: Optional[OptimizationOutcome]
    attempts: List[AttemptRecord]
    failure: Optional[FailureReport]

    @property
    def succeeded(self) -> bool:
        """True when at least one attempt returned an outcome."""
        return self.outcome is not None


class ResilientSolver:
    """Fallback-ladder wrapper around the Optimization 1/2 solvers.

    Never raises on solver breakdowns: every rung failure is recorded in
    an :class:`AttemptRecord` and the ladder moves on; a fully exhausted
    ladder yields a :class:`FailureReport` instead of an exception.
    Configuration errors still propagate — a misconfigured problem fails
    identically on every rung and retrying it would only hide the bug.
    """

    def __init__(self, evaluator: Evaluator,
                 policy: Optional[ResiliencePolicy] = None,
                 jac: str = "analytic"):
        self.evaluator = evaluator
        self.policy = policy or ResiliencePolicy()
        self.jac = jac
        self._rng = np.random.default_rng(
            np.random.SeedSequence([self.policy.seed]))

    def minimize_temperature(
        self,
        x0: Optional[Tuple[float, float]] = None,
        early_stop_below: Optional[float] = None,
    ) -> ResilientOutcome:
        """Optimization 2 through the fallback ladder."""
        if x0 is None:
            x0 = initial_operating_point(self.evaluator.problem)

        def runner(method: str,
                   point: Tuple[float, float]) -> OptimizationOutcome:
            return minimize_temperature(
                self.evaluator, x0=point, method=method,
                early_stop_below=early_stop_below,
                max_iterations=self.policy.max_iterations,
                jac=self.jac)

        return self._run_ladder("minimize-temperature", runner, x0,
                                prefer="temperature")

    def minimize_power(self, x0: Tuple[float, float],
                       ) -> ResilientOutcome:
        """Optimization 1 through the fallback ladder."""

        def runner(method: str,
                   point: Tuple[float, float]) -> OptimizationOutcome:
            return minimize_power(
                self.evaluator, x0=point, method=method,
                max_iterations=self.policy.max_iterations,
                jac=self.jac)

        return self._run_ladder("minimize-power", runner, x0,
                                prefer="power")

    # -- internals ----------------------------------------------------

    def _run_ladder(
        self,
        stage: str,
        runner: Callable[[str, Tuple[float, float]],
                         OptimizationOutcome],
        x0: Tuple[float, float],
        prefer: str,
    ) -> ResilientOutcome:
        policy = self.policy
        attempts: List[AttemptRecord] = []
        best: Optional[OptimizationOutcome] = None
        last_error: Optional[SolverError] = None
        point = (float(x0[0]), float(x0[1]))
        operator = self.evaluator.context.operator
        with _obs.span("ladder", stage):
            for method in policy.ladder:
                for retry in range(policy.retries_per_method + 1):
                    start = point if retry == 0 \
                        else self._perturb(point)
                    solves_before = self.evaluator.solve_count
                    factor_before = operator.stats.factorizations
                    self.evaluator.set_solve_budget(
                        policy.max_evaluations)
                    try:
                        # The attempt span sits inside the try so a
                        # SolverError is recorded on it before the
                        # handler below absorbs the exception.
                        with _obs.span("attempt", method, retry=retry):
                            outcome = runner(method, start)
                    except SolverError as exc:
                        last_error = exc
                        if _obs.STATE.enabled:
                            _obs.STATE.metrics.counter(
                                "resilient.attempts.failed").inc()
                        attempts.append(AttemptRecord(
                            method=method, retry=retry, success=False,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            evaluations=(self.evaluator.solve_count
                                         - solves_before),
                            factorizations=(
                                operator.stats.factorizations
                                - factor_before)))
                        continue
                    finally:
                        self.evaluator.set_solve_budget(None)
                        if _obs.STATE.enabled:
                            _obs.STATE.metrics.counter(
                                "resilient.attempts").inc()
                    attempts.append(AttemptRecord(
                        method=method, retry=retry,
                        success=bool(outcome.success), error_type=None,
                        message=outcome.message,
                        evaluations=outcome.evaluations,
                        factorizations=(operator.stats.factorizations
                                        - factor_before)))
                    best = self._better(best, outcome, prefer)
                    if outcome.success:
                        return ResilientOutcome(best, attempts, None)
        if best is not None:
            # No rung reported success, but we do hold a best iterate —
            # return it as a soft failure (success=False on the outcome).
            return ResilientOutcome(best, attempts, None)
        error: SolverError = last_error if last_error is not None \
            else SolverError("fallback ladder produced no attempts")
        return ResilientOutcome(
            None, attempts,
            failure_report_from_exception(
                self.evaluator.problem.name, stage, error,
                attempts=attempts, last_iterate=point))

    def _perturb(self, point: Tuple[float, float],
                 ) -> Tuple[float, float]:
        """Deterministic warm-restart jitter around ``point``."""
        problem = self.evaluator.problem
        omega_max = problem.limits.omega_max
        current_max = problem.current_upper_bound
        scale = self.policy.restart_perturbation
        jitter = self._rng.uniform(-scale, scale, size=2)
        omega = float(np.clip(point[0] + jitter[0] * omega_max,
                              0.0, omega_max))
        if current_max > 0.0:
            current = float(np.clip(
                point[1] + jitter[1] * current_max, 0.0, current_max))
        else:
            current = 0.0
        return omega, current

    @staticmethod
    def _better(best: Optional[OptimizationOutcome],
                outcome: OptimizationOutcome,
                prefer: str) -> OptimizationOutcome:
        if best is None:
            return outcome
        if prefer == "temperature":
            if (outcome.evaluation.max_chip_temperature
                    < best.evaluation.max_chip_temperature):
                return outcome
            return best
        # Power: a feasible point always beats an infeasible one;
        # among equals, lower total power wins.
        if outcome.evaluation.feasible != best.evaluation.feasible:
            return outcome if outcome.evaluation.feasible else best
        if outcome.evaluation.total_power < best.evaluation.total_power:
            return outcome
        return best


@dataclass
class ResilientOFTECResult:
    """Algorithm 1 outcome under the resilience policy.

    Attributes:
        result: The OFTEC result (None only when every stage, including
            the initial-point evaluation, broke down).
        attempts: All ladder attempts across both stages.
        failures: Post-mortems of every hard-failed stage.
        degraded_to_dvfs: True when the pipeline fell back to frequency
            throttling.
        throttle: The DVFS search outcome when degraded.
    """

    result: Optional[OFTECResult]
    attempts: List[AttemptRecord] = field(default_factory=list)
    failures: List[FailureReport] = field(default_factory=list)
    degraded_to_dvfs: bool = False
    throttle: Optional[ThrottleResult] = None

    @property
    def feasible(self) -> bool:
        """True when a thermally feasible cooling point was found."""
        return self.result is not None and self.result.feasible


def run_oftec_resilient(
    problem: CoolingProblem,
    policy: Optional[ResiliencePolicy] = None,
    evaluator: Optional[Evaluator] = None,
    dvfs: Optional[DVFSModel] = None,
    jac: str = "analytic",
) -> ResilientOFTECResult:
    """Algorithm 1 with the fallback ladder and graceful degradation.

    Mirrors :func:`repro.core.run_oftec` stage by stage, but never lets
    a solver breakdown escape: each stage runs through the
    :class:`ResilientSolver` ladder, hard failures become
    :class:`FailureReport` entries, and a genuinely infeasible instance
    degrades to the DVFS throttling search (when the policy allows and
    the problem carries the coverage DVFS scaling needs).  ``jac``
    selects the gradient mode of every ladder attempt; fault-injecting
    evaluators degrade analytic gradients to finite differences through
    the evaluator's own fallback seam, so ``"analytic"`` stays safe
    under chaos.
    """
    policy = policy or ResiliencePolicy()
    evaluator = evaluator or Evaluator(problem)
    solver = ResilientSolver(evaluator, policy, jac=jac)
    if not _obs.STATE.enabled:
        return _run_oftec_resilient_impl(problem, policy, evaluator,
                                         solver, dvfs)
    with _obs.STATE.tracer.span("oftec", problem.name):
        outcome = _run_oftec_resilient_impl(problem, policy, evaluator,
                                            solver, dvfs)
        if outcome.degraded_to_dvfs:
            _obs.STATE.tracer.event("dvfs.degraded")
            _obs.STATE.metrics.counter("resilient.dvfs.degraded").inc()
        return outcome


def _run_oftec_resilient_impl(
    problem: CoolingProblem,
    policy: ResiliencePolicy,
    evaluator: Evaluator,
    solver: ResilientSolver,
    dvfs: Optional[DVFSModel],
) -> ResilientOFTECResult:
    """The stage-by-stage body of :func:`run_oftec_resilient`."""
    watch = stopwatch()
    solves_before = evaluator.solve_count
    attempts: List[AttemptRecord] = []
    failures: List[FailureReport] = []
    t_max = problem.limits.t_max

    # Line 1: the midpoint initial guess (guarded — even a single
    # evaluation can hit an injected or genuine network fault).
    omega0, current0 = initial_operating_point(problem)
    initial: Optional[Evaluation] = None
    try:
        initial = evaluator.evaluate(omega0, current0)
    except SolverError as exc:
        failures.append(failure_report_from_exception(
            problem.name, "initial-point", exc,
            last_iterate=(omega0, current0)))

    # Lines 2-3: hunt for feasibility when the midpoint violates T_max.
    opt2: Optional[OptimizationOutcome] = None
    start_point: Optional[Tuple[float, float]] = None
    best_eval: Optional[Evaluation] = initial
    if initial is not None and not initial.max_chip_temperature > t_max:
        start_point = (omega0, current0)
    else:
        stage2 = solver.minimize_temperature(
            x0=(omega0, current0), early_stop_below=t_max)
        attempts.extend(stage2.attempts)
        if stage2.failure is not None:
            failures.append(stage2.failure)
        opt2 = stage2.outcome
        if opt2 is not None:
            best_eval = opt2.evaluation
            if not opt2.evaluation.max_chip_temperature > t_max:
                start_point = (opt2.evaluation.omega,
                               opt2.evaluation.current)

    if start_point is not None:
        # Line 6: minimize power from the feasible point.
        stage1 = solver.minimize_power(x0=start_point)
        attempts.extend(stage1.attempts)
        if stage1.failure is not None:
            failures.append(stage1.failure)
        if stage1.outcome is not None:
            opt1 = stage1.outcome
            chosen = opt1.evaluation
        else:
            # Optimization 1 broke down on every rung, but the feasible
            # start point survives (a cache hit — cannot re-fault):
            # degrade to it rather than report nothing.
            opt1 = None
            chosen = evaluator.evaluate(*start_point)
        result = OFTECResult(
            problem_name=problem.name,
            omega_star=chosen.omega,
            current_star=chosen.current,
            evaluation=chosen,
            feasible=chosen.feasible,
            runtime_seconds=watch.elapsed,
            opt2=opt2, opt1=opt1,
            thermal_solves=evaluator.solve_count - solves_before)
        return ResilientOFTECResult(result, attempts, failures)

    # Lines 4-5: infeasible (or every stage broke down).  Report the
    # best point we saw, then quantify the DVFS remedy.
    result = None
    if best_eval is not None:
        result = OFTECResult(
            problem_name=problem.name,
            omega_star=best_eval.omega,
            current_star=best_eval.current,
            evaluation=best_eval,
            feasible=False,
            runtime_seconds=watch.elapsed,
            opt2=opt2, opt1=None,
            thermal_solves=evaluator.solve_count - solves_before)
    throttle: Optional[ThrottleResult] = None
    degraded = False
    if policy.degrade_to_dvfs and problem.coverage is not None:
        try:
            throttle = find_max_frequency(
                problem, dvfs=dvfs, tolerance=policy.dvfs_tolerance)
            degraded = True
        except ReproError as exc:
            failures.append(failure_report_from_exception(
                problem.name, "dvfs-degrade", exc))
    return ResilientOFTECResult(
        result, attempts, failures,
        degraded_to_dvfs=degraded, throttle=throttle)
