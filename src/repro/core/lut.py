"""Lookup-table controller (the paper's proposed online deployment).

Section 6.2: "one can classify the input dynamic power vector to
different categories and pre-calculate optimization solutions and store
them in a look-up table.  In this way, the desired controlling values can
be accessed immediately."  This module implements exactly that: OFTEC is
run offline for a set of representative power vectors; at run time the
observed vector is matched to its nearest representative and the stored
``(omega*, I*)`` is applied with zero optimization latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .evaluator import Evaluation, Evaluator
from .oftec import OFTECResult, run_oftec
from .problem import CoolingProblem


@dataclass
class LUTEntry:
    """One precomputed table row.

    Attributes:
        label: Representative workload name.
        feature: Normalized per-unit power vector used for matching.
        omega: Stored optimal fan speed, rad/s.
        current: Stored optimal TEC current, A.
        feasible: Whether OFTEC found the representative feasible.
    """

    label: str
    feature: np.ndarray
    omega: float
    current: float
    feasible: bool


class LookupTableController:
    """Nearest-representative lookup of precomputed OFTEC solutions."""

    def __init__(self, unit_names: Sequence[str]):
        if not unit_names:
            raise ConfigurationError("unit_names must not be empty")
        self.unit_names: List[str] = list(unit_names)
        self._entries: List[LUTEntry] = []

    @property
    def entries(self) -> List[LUTEntry]:
        """Stored rows (copy)."""
        return list(self._entries)

    def _feature(self, unit_power: Mapping[str, float]) -> np.ndarray:
        vector = np.array(
            [float(unit_power.get(name, 0.0)) for name in self.unit_names])
        if (vector < 0.0).any():
            raise ConfigurationError("Unit powers must be >= 0")
        return vector

    def add_entry(self, label: str, unit_power: Mapping[str, float],
                  omega: float, current: float,
                  feasible: bool = True) -> None:
        """Store one precomputed row: per-unit powers in W, the
        operating point as fan speed in rad/s and TEC current in A."""
        self._entries.append(LUTEntry(
            label=label, feature=self._feature(unit_power),
            omega=omega, current=current, feasible=feasible))

    def precompute(self, problem_template: CoolingProblem,
                   profiles: Mapping[str, Mapping[str, float]],
                   method: str = "slsqp",
                   workers: Optional[int] = None,
                   jac: str = "analytic",
                   executor: Optional[str] = None,
                   ) -> Dict[str, OFTECResult]:
        """Run OFTEC offline for every representative profile.

        ``problem_template`` must carry a coverage so
        :meth:`CoolingProblem.with_profile` can retarget it.  Returns the
        full per-profile OFTEC results for inspection.

        ``workers`` shards the rows across worker processes via
        ``repro.exec`` (None defers to ``REPRO_WORKERS``; 0 stays
        in-process).  Table order and stored entries are identical
        across worker counts.  ``jac`` selects the gradient mode for
        every OFTEC run (see :data:`repro.core.JAC_MODES`).
        ``executor`` picks the fan-out backend (``"process"``,
        ``"thread"``, ``"serial"``; None defers to ``REPRO_EXECUTOR``).
        """
        results: Dict[str, OFTECResult] = {}
        from ..exec import resolve_workers, run_oftec_units
        worker_count = resolve_workers(workers)
        if worker_count >= 1 and len(profiles) > 1:
            results = run_oftec_units(problem_template, profiles,
                                      method, worker_count, jac=jac,
                                      executor=executor)
            for label, unit_power in profiles.items():
                result = results[label]
                self.add_entry(label, unit_power, result.omega_star,
                               result.current_star, result.feasible)
            return results
        for label, unit_power in profiles.items():
            problem = problem_template.with_profile(dict(unit_power),
                                                    name=label)
            result = run_oftec(problem, method=method, jac=jac)
            results[label] = result
            self.add_entry(label, unit_power, result.omega_star,
                           result.current_star, result.feasible)
        return results

    def lookup(self, unit_power: Mapping[str, float],
               ) -> Tuple[float, float, LUTEntry]:
        """Return ``(omega, current, entry)`` for the nearest row.

        Matching is by Euclidean distance between total-power-normalized
        vectors, so the classifier keys on the power *distribution* shape
        with a secondary penalty on total-power mismatch.
        """
        if not self._entries:
            raise ConfigurationError("Lookup table is empty")
        query = self._feature(unit_power)
        query_total = query.sum()
        best_entry: Optional[LUTEntry] = None
        best_distance = np.inf
        for entry in self._entries:
            entry_total = entry.feature.sum()
            shape_distance = float(np.linalg.norm(
                _safe_normalize(query) - _safe_normalize(entry.feature)))
            scale_penalty = abs(query_total - entry_total) \
                / max(query_total, entry_total, 1e-12)
            distance = shape_distance + scale_penalty
            if distance < best_distance:
                best_distance = distance
                best_entry = entry
        if best_entry is None:
            raise ConfigurationError(
                "lookup table has no entries; add_entry() or "
                "precompute() must run first")
        return best_entry.omega, best_entry.current, best_entry

    def screen_entries(self, problem: CoolingProblem,
                       evaluator: Optional[Evaluator] = None,
                       ) -> List[Evaluation]:
        """Evaluate every stored operating point against ``problem``.

        Answers "what would each table row actually do on this
        workload?" — the validation pass that catches stale rows after
        a power-model change.  All rows go through
        :meth:`Evaluator.evaluate_many`, so they share the model's
        build-once operator (and, on leakage-free problems, batch into
        grouped multi-RHS solves).  Returns one
        :class:`~repro.core.evaluator.Evaluation` per entry, in table
        order.
        """
        if not self._entries:
            raise ConfigurationError("Lookup table is empty")
        evaluator = evaluator or Evaluator(problem)
        points = [(entry.omega, entry.current)
                  for entry in self._entries]
        return evaluator.evaluate_many(points)

    # -- pickling -----------------------------------------------------
    #
    # The per-entry feature vectors form one dense (rows x units) grid.
    # When a shared-memory plane is active (worker fan-out), the grid
    # travels as a single shm descriptor instead of n_rows separate
    # array pickles; without a plane SharedArrayRef degrades to a plain
    # array pickle, so bytes stay deterministic either way.

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        entries = state.pop("_entries")
        if entries:
            from ..exec.shm import SharedArrayRef
            grid = np.ascontiguousarray(
                np.stack([entry.feature for entry in entries]))
            state["_feature_grid"] = SharedArrayRef(grid)
            state["_entry_rows"] = [
                (entry.label, entry.omega, entry.current, entry.feasible)
                for entry in entries]
        else:
            state["_feature_grid"] = None
            state["_entry_rows"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        rows = state.pop("_entry_rows")
        grid_ref = state.pop("_feature_grid")
        self.__dict__.update(state)
        self._entries = []
        if rows:
            grid = grid_ref.array if hasattr(grid_ref, "array") \
                else np.asarray(grid_ref)
            for row_index, (label, omega, current, feasible) \
                    in enumerate(rows):
                self._entries.append(LUTEntry(
                    label=label, feature=np.array(grid[row_index]),
                    omega=omega, current=current, feasible=feasible))


def _safe_normalize(vector: np.ndarray) -> np.ndarray:
    total = vector.sum()
    if total <= 0.0:
        return np.zeros_like(vector)
    return vector / total
