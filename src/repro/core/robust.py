"""Robust OFTEC: one operating point covering a workload set.

The LUT controller switches operating points as the workload changes;
when switching is unavailable (fixed firmware tables, a shared cooling
zone, certification against a workload envelope) the controller needs a
*single* ``(omega, I)`` that is feasible for every workload and cheap in
the worst case.  This module solves that min-max problem:

    min_{omega, I}  max_w 𝒫_w(omega, I)
    s.t.            max_w 𝒯_w(omega, I) < T_max

by running the standard solvers on an envelope evaluator whose
objectives are the per-workload maxima.  All workloads must share the
same package (built via :meth:`CoolingProblem.with_profile`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from .evaluator import Evaluation, EvaluationGradient, Evaluator
from .problem import CoolingProblem
from .solvers import minimize_power, minimize_temperature


class EnvelopeEvaluator:
    """Max-over-workloads wrapper with the Evaluator interface.

    Exposes exactly the attributes/methods the solver backends use
    (``problem``, ``solve_count``, ``evaluate``,
    ``evaluate_with_grad``), so :func:`repro.core.minimize_power` runs
    unchanged on the envelope.
    """

    def __init__(self, problems: Sequence[CoolingProblem]):
        if not problems:
            raise ConfigurationError("Need at least one workload")
        model = problems[0].model
        for problem in problems[1:]:
            if problem.model is not model:
                raise ConfigurationError(
                    "All workloads must share one package model; build "
                    "them with CoolingProblem.with_profile")
        self.problems: List[CoolingProblem] = list(problems)
        self.problem = problems[0]  # limits/bounds source
        self._evaluators = [Evaluator(p) for p in problems]

    @property
    def solve_count(self) -> int:
        """Total thermal solves across all member evaluators."""
        return sum(e.solve_count for e in self._evaluators)

    def member_evaluations(self, omega: float, current: float,
                           ) -> Dict[str, Evaluation]:
        """Per-workload evaluations at one operating point
        (fan speed omega, rad/s; TEC current, A)."""
        return {p.name: e.evaluate(omega, current)
                for p, e in zip(self.problems, self._evaluators)}

    def evaluate(self, omega: float, current: float) -> Evaluation:
        """The envelope evaluation at ``(omega, current)`` — rad/s
        and A — taking the worst member per metric."""
        members = list(self.member_evaluations(omega, current).values())
        worst_t = max(m.max_chip_temperature for m in members)
        worst_p = max(m.total_power for m in members)
        worst = max(members, key=lambda m: m.total_power)
        return Evaluation(
            omega=worst.omega, current=worst.current,
            max_chip_temperature=worst_t,
            total_power=worst_p,
            leakage_power=worst.leakage_power,
            tec_power=worst.tec_power,
            fan_power=worst.fan_power,
            feasible=all(m.feasible for m in members),
            runaway=any(m.runaway for m in members),
            steady=worst.steady)

    def evaluate_with_grad(self, omega: float,
                           current: float) -> Evaluation:
        """Envelope evaluation with the active-member subgradient.

        Away from crossings ``max_w f_w`` is differentiable and its
        gradient is the argmax member's; the temperature slope comes
        from the worst-𝒯 workload and the power slope from the
        worst-𝒫 workload, each through that member evaluator's own
        (adjoint-backed) :meth:`Evaluator.evaluate_with_grad`.  At a
        tie this is one valid subgradient — exactly the smoothness
        caveat the min-max formulation already carries.  (``omega`` in
        rad/s, ``current`` in A.)
        """
        members = [e.evaluate_with_grad(omega, current)
                   for e in self._evaluators]
        envelope = self.evaluate(omega, current)
        worst_t = max(members, key=lambda m: m.max_chip_temperature)
        worst_p = max(members, key=lambda m: m.total_power)
        modes = {worst_t.gradient.mode, worst_p.gradient.mode}
        envelope.gradient = EvaluationGradient(
            d_temp_omega=worst_t.gradient.d_temp_omega,
            d_temp_current=worst_t.gradient.d_temp_current,
            d_power_omega=worst_p.gradient.d_power_omega,
            d_power_current=worst_p.gradient.d_power_current,
            mode="adjoint" if modes == {"adjoint"} else "fd")
        return envelope


@dataclass
class RobustResult:
    """Outcome of the min-max optimization.

    Attributes:
        omega_star: The single fan speed covering the set, rad/s.
        current_star: The single TEC current covering the set, A.
        worst_case_power: max_w 𝒫_w at the optimum, W.
        worst_case_temperature: max_w 𝒯_w at the optimum, K.
        feasible: Whether every workload meets T_max there.
        per_workload: Per-workload evaluations at the optimum.
        runtime_seconds: Wall-clock time.
        evaluations: Total thermal solves.
    """

    omega_star: float
    current_star: float
    worst_case_power: float
    worst_case_temperature: float
    feasible: bool
    per_workload: Dict[str, Evaluation]
    runtime_seconds: float
    evaluations: int


def run_oftec_robust(problems: Sequence[CoolingProblem],
                     method: str = "slsqp",
                     jac: str = "analytic") -> RobustResult:
    """Algorithm 1 on the workload envelope.

    The usual two-stage pipeline (feasibility hunt, then power
    minimization) applied to the max-over-workloads objectives.
    ``jac`` selects the gradient mode (:data:`repro.core.JAC_MODES`);
    the analytic path uses the envelope's active-member subgradient.
    """
    start = time.perf_counter()
    envelope = EnvelopeEvaluator(problems)
    limits = envelope.problem.limits
    t_max = limits.t_max

    midpoint = envelope.evaluate(limits.omega_max / 2.0,
                                 envelope.problem.current_upper_bound
                                 / 2.0)
    if midpoint.max_chip_temperature > t_max:
        stage1 = minimize_temperature(envelope, method=method,
                                      early_stop_below=t_max, jac=jac)
        start_point = (stage1.omega, stage1.current)
        if stage1.evaluation.max_chip_temperature > t_max:
            per_workload = envelope.member_evaluations(*start_point)
            return RobustResult(
                omega_star=stage1.omega, current_star=stage1.current,
                worst_case_power=stage1.evaluation.total_power,
                worst_case_temperature=stage1.evaluation
                .max_chip_temperature,
                feasible=False,
                per_workload=per_workload,
                runtime_seconds=time.perf_counter() - start,
                evaluations=envelope.solve_count)
    else:
        start_point = (midpoint.omega, midpoint.current)

    outcome = minimize_power(envelope, x0=start_point, method=method,
                             jac=jac)
    per_workload = envelope.member_evaluations(outcome.omega,
                                               outcome.current)
    return RobustResult(
        omega_star=outcome.omega,
        current_star=outcome.current,
        worst_case_power=outcome.evaluation.total_power,
        worst_case_temperature=outcome.evaluation.max_chip_temperature,
        feasible=outcome.evaluation.feasible,
        per_workload=per_workload,
        runtime_seconds=time.perf_counter() - start,
        evaluations=envelope.solve_count)
