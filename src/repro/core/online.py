"""Online interval control over a live power trace.

Section 6.2 sketches OFTEC's deployment: its few-hundred-millisecond
runtime suits interval-based control, with a lookup table for immediate
decisions.  This module closes that loop: a controller observes the
workload's recent power profile at every control interval, picks an
``(omega, I_TEC)`` via a pluggable policy, and the package thermals are
integrated forward between decisions with the transient solver.

Built-in policies:

* :func:`static_policy` — one fixed operating point (e.g. worst-case
  OFTEC) applied forever;
* :func:`lut_policy` — nearest-representative lookup in a precomputed
  :class:`repro.core.LookupTableController`;
* :func:`reoptimize_policy` — run Algorithm 1 on every interval (the
  expensive oracle the LUT approximates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..leakage import tangent_linearization
from ..power import PowerTrace
from .lut import LookupTableController
from .oftec import run_oftec
from .problem import CoolingProblem

#: A control policy: observed per-unit powers -> (omega, I_TEC).
Policy = Callable[[Mapping[str, float]], Tuple[float, float]]


@dataclass
class IntervalDecision:
    """One control decision.

    Attributes:
        time: Decision instant, s.
        omega: Chosen fan speed, rad/s.
        current: Chosen TEC current, A.
    """

    time: float
    omega: float
    current: float


@dataclass
class OnlineControlResult:
    """Closed-loop trace of an interval controller.

    Attributes:
        times: Simulation sample times, s.
        max_chip_temperature: 𝒯(t), K.
        omega_trace: Applied fan speed per sample, rad/s.
        current_trace: Applied TEC current per sample, A.
        cooling_energy: Integral of (P_TEC + P_fan) over the run, J.
        violation_time: Total time spent above T_max, s.
        decisions: The per-interval decisions taken.
    """

    times: np.ndarray
    max_chip_temperature: np.ndarray
    omega_trace: np.ndarray
    current_trace: np.ndarray
    cooling_energy: float
    violation_time: float
    decisions: List[IntervalDecision] = field(default_factory=list)

    @property
    def peak_temperature(self) -> float:
        """Hottest sample, K."""
        return float(self.max_chip_temperature.max())


def static_policy(omega: float, current: float) -> Policy:
    """Always apply one fixed operating point: fan speed omega,
    rad/s, and TEC current, A."""
    def policy(_observed: Mapping[str, float]) -> Tuple[float, float]:
        return omega, current
    return policy


def lut_policy(table: LookupTableController) -> Policy:
    """Nearest-representative lookup (the paper's deployment idea)."""
    def policy(observed: Mapping[str, float]) -> Tuple[float, float]:
        omega, current, _entry = table.lookup(observed)
        return omega, current
    return policy


def reoptimize_policy(problem_template: CoolingProblem,
                      method: str = "slsqp") -> Policy:
    """Run Algorithm 1 on the observed profile at every interval."""
    def policy(observed: Mapping[str, float]) -> Tuple[float, float]:
        problem = problem_template.with_profile(dict(observed),
                                                name="interval")
        result = run_oftec(problem, method=method)
        return result.omega_star, result.current_star
    return policy


def run_online_controller(
    problem: CoolingProblem,
    trace: PowerTrace,
    policy: Policy,
    control_interval: float = 0.5,
    dt: float = 0.05,
    initial_temperatures: Optional[np.ndarray] = None,
) -> OnlineControlResult:
    """Drive the package through a power trace under a control policy.

    At each control-interval boundary the policy observes the trace's
    per-unit *maximum* over the upcoming interval (the same reduction
    OFTEC consumes offline) and fixes ``(omega, I)`` until the next
    boundary; the thermals integrate forward at step ``dt``
    (``control_interval`` and ``dt`` in s, ``initial_temperatures``
    in K).
    """
    if control_interval <= 0.0 or dt <= 0.0:
        raise ConfigurationError(
            "control_interval and dt must be positive")
    if dt > control_interval:
        raise ConfigurationError("dt must not exceed control_interval")
    if problem.coverage is None:
        raise ConfigurationError(
            "Online control requires the problem's CellCoverage")

    model = problem.model
    network = model.network
    capacities = network.heat_capacities()
    c_over_dt = capacities / dt
    limits = problem.limits

    n = network.node_count
    if initial_temperatures is None:
        temps = np.full(n, model.config.ambient, dtype=float)
    else:
        temps = np.asarray(initial_temperatures, dtype=float).copy()
        if temps.shape != (n,):
            raise ConfigurationError(
                f"initial_temperatures must have shape ({n},)")

    duration = trace.duration
    t_start = float(trace.times[0])
    steps = int(round(duration / dt))
    cell_power_cache: Dict[int, np.ndarray] = {}

    def cell_power_at(t: float) -> np.ndarray:
        idx = int(np.searchsorted(trace.times, t, side="right") - 1)
        idx = min(max(idx, 0), trace.sample_count - 1)
        cached = cell_power_cache.get(idx)
        if cached is None:
            sample = dict(zip(trace.unit_names, trace.samples[idx]))
            cached = problem.coverage.power_map(sample)
            cell_power_cache[idx] = cached
        return cached

    times: List[float] = []
    temp_trace: List[float] = []
    omega_trace: List[float] = []
    current_trace: List[float] = []
    decisions: List[IntervalDecision] = []
    cooling_energy = 0.0
    violation_time = 0.0

    omega, current = 0.0, 0.0
    next_decision = t_start
    for step in range(1, steps + 1):
        t = t_start + step * dt
        if t - dt >= next_decision - 1e-12:
            window_end = min(next_decision + control_interval,
                             t_start + duration)
            window = trace.window(
                max(next_decision, float(trace.times[0])),
                max(window_end, float(trace.times[0]) + 1e-9))
            observed = window.max_profile().unit_power
            omega_raw, current_raw = policy(observed)
            omega = float(np.clip(omega_raw, 0.0, limits.omega_max))
            current = float(np.clip(current_raw, 0.0,
                                    problem.current_upper_bound))
            decisions.append(IntervalDecision(next_decision, omega,
                                              current))
            next_decision += control_interval

        chip = model.chip_temperatures(temps)
        taylor = tangent_linearization(problem.leakage, chip)
        fan_power = problem.fan.power(omega)
        diag, rhs = model.overlays(
            omega, current, cell_power_at(t), taylor.a,
            taylor.constant_term(),
            sink_heat=problem.fan_heat_fraction * fan_power)
        # Backward-Euler step through the network's build-once
        # operator; steady control phases reuse cached factorizations.
        temps = network.solve(diag + c_over_dt,
                              rhs + c_over_dt * temps)

        chip = model.chip_temperatures(temps)
        hottest = float(chip.max())
        times.append(t)
        temp_trace.append(hottest)
        omega_trace.append(omega)
        current_trace.append(current)
        if hottest > limits.t_max:
            violation_time += dt
        tec_power = 0.0
        if model.tec_array is not None and current > 0.0:
            cold, hot = model.tec_face_temperatures(temps)
            tec_power = model.tec_array.total_power(cold, hot, current)
        cooling_energy += (fan_power + tec_power) * dt

    return OnlineControlResult(
        times=np.array(times),
        max_chip_temperature=np.array(temp_trace),
        omega_trace=np.array(omega_trace),
        current_trace=np.array(current_trace),
        cooling_energy=cooling_energy,
        violation_time=violation_time,
        decisions=decisions)
