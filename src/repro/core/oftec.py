"""Algorithm 1: OFTEC.

The paper's pipeline:

1. Start at ``(omega_max/2, I_max/2)`` — the empirical sweet spot of the
   Optimization 2 landscape (Figure 6(a)).
2. If that point violates ``T_max``, run Optimization 2 (minimize the
   maximum die temperature), stopping early at the first iterate below
   ``T_max``.
3. If even Optimization 2 cannot reach ``T_max``, the instance is
   infeasible — report failure.
4. From the feasible point, run Optimization 1 (minimize
   𝒫 = P_leakage + P_TEC + P_fan subject to 𝒯 < T_max) and return
   ``(omega*, I_TEC*)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import InfeasibleProblemError
from ..obs import runtime as _obs
from ..obs.clock import stopwatch
from .evaluator import Evaluation, Evaluator
from .problem import CoolingProblem
from .solvers import (
    OptimizationOutcome,
    minimize_power,
    minimize_temperature,
)


@dataclass
class OFTECResult:
    """Output of Algorithm 1.

    Attributes:
        problem_name: Workload label.
        omega_star: Optimal fan speed, rad/s.
        current_star: Optimal TEC driving current, A.
        evaluation: Full evaluation at ``(omega*, I*)``.
        feasible: False when Algorithm 1 returned "failed".
        runtime_seconds: Wall-clock runtime of the whole algorithm
            (Table 2's runtime column).
        opt2: The Optimization 2 stage outcome (None when the initial
            point was already feasible).
        opt1: The Optimization 1 stage outcome (None when infeasible).
        thermal_solves: Total steady-state solves consumed.
    """

    problem_name: str
    omega_star: float
    current_star: float
    evaluation: Evaluation
    feasible: bool
    runtime_seconds: float
    opt2: Optional[OptimizationOutcome]
    opt1: Optional[OptimizationOutcome]
    thermal_solves: int

    @property
    def total_power(self) -> float:
        """𝒫 at the returned operating point, W."""
        return self.evaluation.total_power

    @property
    def max_chip_temperature(self) -> float:
        """𝒯 at the returned operating point, K."""
        return self.evaluation.max_chip_temperature


def initial_operating_point(problem: CoolingProblem) -> Tuple[float,
                                                              float]:
    """Algorithm 1 line 1: the midpoint initial guess
    ``(omega_max/2, I_max/2)`` in (rad/s, A) — the empirical sweet spot
    of the Optimization 2 landscape (Figure 6(a))."""
    return (problem.limits.omega_max / 2.0,
            problem.current_upper_bound / 2.0)


def run_oftec(
    problem: CoolingProblem,
    method: str = "slsqp",
    evaluator: Optional[Evaluator] = None,
    raise_on_infeasible: bool = False,
    max_iterations: int = 60,
    jac: str = "analytic",
) -> OFTECResult:
    """Execute Algorithm 1 on a cooling problem.

    Args:
        problem: The assembled instance.
        method: Solver backend (see :data:`repro.core.SOLVER_METHODS`).
        evaluator: Optional pre-warmed evaluator to reuse its cache.
        raise_on_infeasible: Raise :class:`InfeasibleProblemError` instead
            of returning a failed result.
        max_iterations: Per-stage solver iteration budget.
        jac: Gradient mode for both stages (see
            :data:`repro.core.JAC_MODES`).

    Returns:
        An :class:`OFTECResult`; when infeasible, it carries the best
        temperature-minimizing point found with ``feasible=False``.
    """
    with _obs.span("oftec", problem.name):
        return _run_oftec_impl(problem, method, evaluator,
                               raise_on_infeasible, max_iterations, jac)


def _run_oftec_impl(
    problem: CoolingProblem,
    method: str,
    evaluator: Optional[Evaluator],
    raise_on_infeasible: bool,
    max_iterations: int,
    jac: str = "analytic",
) -> OFTECResult:
    """The Algorithm 1 body of :func:`run_oftec`."""
    watch = stopwatch()
    evaluator = evaluator or Evaluator(problem)
    solves_before = evaluator.solve_count
    limits = problem.limits
    t_max = limits.t_max

    # Line 1: the midpoint initial guess.
    omega0, current0 = initial_operating_point(problem)
    initial = evaluator.evaluate(omega0, current0)

    opt2: Optional[OptimizationOutcome] = None
    if initial.max_chip_temperature > t_max:
        # Lines 2-3: hunt for feasibility by minimizing 𝒯.
        opt2 = minimize_temperature(
            evaluator, x0=(omega0, current0), method=method,
            early_stop_below=t_max, max_iterations=max_iterations,
            jac=jac)
        feasible_point = opt2.evaluation
        if feasible_point.max_chip_temperature > t_max:
            # Lines 4-5: no solution exists.
            runtime = watch.elapsed
            if raise_on_infeasible:
                raise InfeasibleProblemError(
                    f"{problem.name}: even the temperature-minimizing "
                    "point reaches "
                    f"{feasible_point.max_chip_temperature:.1f} K "
                    f"> T_max = {t_max:.1f} K")
            return OFTECResult(
                problem_name=problem.name,
                omega_star=feasible_point.omega,
                current_star=feasible_point.current,
                evaluation=feasible_point,
                feasible=False,
                runtime_seconds=runtime,
                opt2=opt2, opt1=None,
                thermal_solves=evaluator.solve_count - solves_before)
        start_point = (feasible_point.omega, feasible_point.current)
    else:
        start_point = (omega0, current0)

    # Line 6: minimize the cooling-related power from the feasible point.
    opt1 = minimize_power(evaluator, x0=start_point, method=method,
                          max_iterations=max_iterations, jac=jac)
    runtime = watch.elapsed
    return OFTECResult(
        problem_name=problem.name,
        omega_star=opt1.omega,
        current_star=opt1.current,
        evaluation=opt1.evaluation,
        feasible=opt1.evaluation.feasible,
        runtime_seconds=runtime,
        opt2=opt2, opt1=opt1,
        thermal_solves=evaluator.solve_count - solves_before)
