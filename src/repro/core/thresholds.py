"""Threshold and hysteresis TEC controllers (reference [5] of the paper).

These are the "simple controllers" the related work proposes and the
paper's Section 3 critiques: the TEC string is driven at a constant
current that is switched on and off by die-temperature comparisons.

* **Threshold controller** — TECs on above ``t_on``, off below it.
* **Hysteresis controller** — on above ``t_on``, off only below a lower
  ``t_off``, reducing the on/off switching rate (each transition stresses
  the devices).

Both run closed-loop on the transient solver: temperature feedback from
step ``n`` decides the current applied during step ``n+1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..leakage import tangent_linearization
from .problem import CoolingProblem


@dataclass
class ThresholdControllerResult:
    """Closed-loop trace of a threshold-style controller.

    Attributes:
        times: Sample times, s.
        max_chip_temperature: 𝒯(t), K.
        current: Applied TEC current per step, A.
        switch_count: Number of on/off transitions.
        duty_cycle: Fraction of steps with the TEC on.
        runaway: True if the runaway ceiling was crossed.
    """

    times: np.ndarray
    max_chip_temperature: np.ndarray
    current: np.ndarray
    switch_count: int
    duty_cycle: float
    runaway: bool

    @property
    def peak_temperature(self) -> float:
        """Highest 𝒯 sample, K."""
        return float(self.max_chip_temperature.max())


def _run_switched_controller(
    problem: CoolingProblem,
    omega: float,
    on_current: float,
    duration: float,
    dt: float,
    t_on: float,
    t_off: float,
    initial_temperatures: Optional[np.ndarray] = None,
) -> ThresholdControllerResult:
    """Shared closed-loop simulation for both controller flavors."""
    if not problem.has_tec:
        raise ConfigurationError("Switched controllers need a TEC package")
    if duration <= 0.0 or dt <= 0.0 or dt > duration:
        raise ConfigurationError("Require 0 < dt <= duration")
    if t_off > t_on:
        raise ConfigurationError("t_off must not exceed t_on")
    if not (0.0 <= on_current <= problem.limits.i_tec_max):
        raise ConfigurationError(
            f"on_current must lie in [0, {problem.limits.i_tec_max}]")

    model = problem.model
    network = model.network
    capacities = network.heat_capacities()
    c_over_dt = capacities / dt
    fan_heat = problem.fan_heat_fraction * problem.fan.power(omega)

    n = network.node_count
    if initial_temperatures is None:
        temps = np.full(n, model.config.ambient, dtype=float)
    else:
        temps = np.asarray(initial_temperatures, dtype=float).copy()
        if temps.shape != (n,):
            raise ConfigurationError(
                f"initial_temperatures must have shape ({n},)")

    steps = int(round(duration / dt))
    times = [0.0]
    chip = model.chip_temperatures(temps)
    trace_t = [float(chip.max())]
    trace_i: List[float] = [0.0]
    tec_on = False
    switches = 0
    on_steps = 0
    runaway = False

    for step in range(1, steps + 1):
        t_now = step * dt
        hottest = float(model.chip_temperatures(temps).max())
        was_on = tec_on
        if hottest > t_on:
            tec_on = True
        elif hottest < t_off:
            tec_on = False
        if tec_on != was_on:
            switches += 1
        current = on_current if tec_on else 0.0
        if tec_on:
            on_steps += 1

        chip = model.chip_temperatures(temps)
        taylor = tangent_linearization(problem.leakage, chip)
        diag, rhs = model.overlays(
            omega, current, problem.dynamic_cell_power,
            taylor.a, taylor.constant_term(), sink_heat=fan_heat)
        # Backward-Euler step through the network's build-once
        # operator; steady control phases reuse cached factorizations.
        temps = network.solve(diag + c_over_dt,
                              rhs + c_over_dt * temps)

        times.append(t_now)
        trace_t.append(float(model.chip_temperatures(temps).max()))
        trace_i.append(current)
        if float(temps.max()) > model.config.runaway_ceiling:
            runaway = True
            break

    return ThresholdControllerResult(
        times=np.array(times),
        max_chip_temperature=np.array(trace_t),
        current=np.array(trace_i),
        switch_count=switches,
        duty_cycle=on_steps / max(steps, 1),
        runaway=runaway)


def run_threshold_controller(
    problem: CoolingProblem,
    omega: float,
    on_current: float,
    threshold: float,
    duration: float = 20.0,
    dt: float = 0.05,
    initial_temperatures: Optional[np.ndarray] = None,
) -> ThresholdControllerResult:
    """Single-threshold on/off TEC control (ref [5], controller 1).

    Fan speed ``omega`` in rad/s, switched current ``on_current`` in A,
    ``threshold`` and ``initial_temperatures`` in K, ``duration`` and
    ``dt`` in s.
    """
    return _run_switched_controller(
        problem, omega, on_current, duration, dt,
        t_on=threshold, t_off=threshold,
        initial_temperatures=initial_temperatures)


def run_hysteresis_controller(
    problem: CoolingProblem,
    omega: float,
    on_current: float,
    t_on: float,
    t_off: float,
    duration: float = 20.0,
    dt: float = 0.05,
    initial_temperatures: Optional[np.ndarray] = None,
) -> ThresholdControllerResult:
    """Two-threshold hysteresis TEC control (ref [5], controller 2).

    Fan speed ``omega`` in rad/s, switched current ``on_current`` in A,
    ``t_on``/``t_off`` and ``initial_temperatures`` in K, ``duration``
    and ``dt`` in s.
    """
    return _run_switched_controller(
        problem, omega, on_current, duration, dt,
        t_on=t_on, t_off=t_off,
        initial_temperatures=initial_temperatures)
