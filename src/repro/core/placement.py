"""Thermal-aware thread placement on a multicore die.

On a CMP, *where* the hot threads run changes the hotspot structure:
packing two heavy threads onto adjacent cores concentrates heat, while
spreading them lets the spreader work.  Because OFTEC's cooling power
depends on the hotspot, thread placement and cooling control couple —
this module searches thread-to-core assignments (exhaustively; core
counts are small) with OFTEC evaluating each candidate.

Works with any floorplan whose unit names follow the
``core<i>_<tile>`` convention of :func:`repro.geometry.cmp4_floorplan`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SolverError
from ..geometry.cmp4 import cmp4_unit_power
from .oftec import OFTECResult, run_oftec
from .problem import CoolingProblem


@dataclass
class PlacementResult:
    """Outcome of the placement search.

    Attributes:
        assignment: ``assignment[i]`` is the thread index placed on
            core ``i`` (-1 for an idle core).
        core_powers: Per-core dynamic power under the best assignment, W.
        oftec: OFTEC outcome for the best assignment.
        evaluated: Number of distinct assignments evaluated.
        runtime_seconds: Search wall-clock time.
        ranking: (assignment, total power) for every evaluated
            candidate, cheapest first; infeasible candidates carry
            ``inf``.
    """

    assignment: Tuple[int, ...]
    core_powers: List[float]
    oftec: OFTECResult
    evaluated: int
    runtime_seconds: float
    ranking: List[Tuple[Tuple[int, ...], float]]


def _assignment_core_powers(assignment: Sequence[int],
                            thread_powers: Sequence[float],
                            idle_power: float) -> List[float]:
    return [thread_powers[t] if t >= 0 else idle_power
            for t in assignment]


def optimize_thread_placement(
    problem_template: CoolingProblem,
    thread_powers: Sequence[float],
    core_count: int = 4,
    idle_power: float = 2.0,
    l2_power: float = 4.0,
    method: str = "slsqp",
    deduplicate_symmetric: bool = True,
) -> PlacementResult:
    """Search thread-to-core assignments, minimizing OFTEC's 𝒫.

    Args:
        problem_template: A CMP cooling problem carrying a coverage
            whose floorplan uses ``core<i>_<tile>`` unit names.
        thread_powers: Dynamic power of each thread, W; threads beyond
            ``core_count`` are rejected, unassigned cores idle.
        core_count: Number of cores on the die.
        idle_power: Power of an idle core, W.
        l2_power: Shared-L2 power, W.
        method: Solver backend for the per-candidate OFTEC runs.
        deduplicate_symmetric: Skip assignments equivalent under the
            identical-thread-power symmetry (threads with equal power
            are interchangeable).
    """
    threads = list(thread_powers)
    if not threads:
        raise ConfigurationError("Need at least one thread")
    if len(threads) > core_count:
        raise ConfigurationError(
            f"{len(threads)} threads exceed {core_count} cores")
    if any(p < 0.0 for p in threads):
        raise ConfigurationError("Thread powers must be >= 0")
    if problem_template.coverage is None:
        raise ConfigurationError(
            "Placement needs the problem's CellCoverage")

    start = time.perf_counter()
    padded = list(range(len(threads))) + [-1] * (core_count
                                                 - len(threads))
    seen_power_patterns: set = set()
    ranking: List[Tuple[Tuple[int, ...], float]] = []
    best: Optional[Tuple[Tuple[int, ...], OFTECResult,
                         List[float]]] = None
    evaluated = 0

    for perm in set(itertools.permutations(padded, core_count)):
        core_powers = _assignment_core_powers(perm, threads,
                                              idle_power)
        if deduplicate_symmetric:
            pattern = tuple(round(p, 9) for p in core_powers)
            if pattern in seen_power_patterns:
                continue
            seen_power_patterns.add(pattern)
        unit_power = cmp4_unit_power(core_powers, l2_power=l2_power)
        candidate = problem_template.with_profile(
            unit_power, name=f"placement{perm}")
        result = run_oftec(candidate, method=method)
        evaluated += 1
        cost = result.total_power if result.feasible else float("inf")
        ranking.append((tuple(perm), cost))
        if best is None or cost < ranking_best_cost(best[1]):
            if result.feasible or best is None:
                best = (tuple(perm), result, core_powers)

    if best is None:
        raise SolverError(
            "thread-placement search evaluated no permutations")
    ranking.sort(key=lambda item: item[1])
    assignment, oftec_result, core_powers = best
    return PlacementResult(
        assignment=assignment,
        core_powers=core_powers,
        oftec=oftec_result,
        evaluated=evaluated,
        runtime_seconds=time.perf_counter() - start,
        ranking=ranking)


def ranking_best_cost(result: OFTECResult) -> float:
    """Cost key for comparisons: 𝒫 when feasible, else infinity."""
    return result.total_power if result.feasible else float("inf")


def placement_spread_score(assignment: Sequence[int],
                           adjacency: Dict[int, List[int]],
                           thread_powers: Sequence[float],
                           idle_power: float = 2.0) -> float:
    """Heuristic score: summed power of adjacent core pairs, W².

    ``thread_powers`` and ``idle_power`` are per-core dynamic powers
    in W.  Lower is better (hot neighbors are bad).  Useful as a cheap
    pre-ranking before the thermal search on larger core counts.
    """
    powers = _assignment_core_powers(assignment, list(thread_powers),
                                     idle_power)
    score = 0.0
    for core, neighbors in adjacency.items():
        for other in neighbors:
            if other > core:
                score += powers[core] * powers[other]
    return score


#: Physical abutment of the quad-core layout: cores 0/1 (bottom row)
#: and 2/3 (top row) share vertical edges within a row; the 4 mm shared
#: L2 spine separates the rows, so cross-row pairs are NOT adjacent —
#: the thermal search confirms spine-separated placements run cheapest.
CMP4_ADJACENCY: Dict[int, List[int]] = {
    0: [1],
    1: [0],
    2: [3],
    3: [2],
}
