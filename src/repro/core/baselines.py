"""Baseline cooling controllers (Section 6.1).

The paper compares OFTEC against two baselines, and additionally argues
that a TEC-only system (no fan) cannot escape thermal runaway:

1. **Variable-omega**: no TECs, fan speed chosen "using a method similar
   to OFTEC with the difference that no TEC current is required to be
   found" — i.e. Algorithm 1 restricted to one variable.  The package
   uses the Section 6.1 fairness correction (TIM1 conductivity raised to
   the TIM1+TEC series value).
2. **Fixed-omega**: no TECs, fan pinned at 2000 RPM.
3. **TEC-only**: TECs present, fan off (natural convection only); the
   driving current is swept for the coolest achievable die.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import OMEGA_FIXED_BASELINE
from ..errors import ConfigurationError, SolverError
from ..obs.clock import stopwatch
from .evaluator import Evaluation, Evaluator
from .oftec import OFTECResult, run_oftec
from .problem import CoolingProblem


@dataclass
class BaselineResult:
    """Outcome of a baseline controller on one workload.

    Attributes:
        problem_name: Workload label.
        controller: Baseline identifier ("variable-omega", "fixed-omega",
            or "tec-only").
        omega: Chosen fan speed, rad/s.
        current: Chosen TEC current, A (0 for the no-TEC baselines).
        evaluation: Evaluation at the chosen point.
        feasible: Whether the thermal constraint was met.
        runaway: True when every examined point was thermal runaway.
        runtime_seconds: Controller wall-clock time.
    """

    problem_name: str
    controller: str
    omega: float
    current: float
    evaluation: Evaluation
    feasible: bool
    runaway: bool
    runtime_seconds: float

    @property
    def total_power(self) -> float:
        """𝒫 at the chosen operating point, W."""
        return self.evaluation.total_power

    @property
    def max_chip_temperature(self) -> float:
        """𝒯 at the chosen operating point, K."""
        return self.evaluation.max_chip_temperature


def run_variable_fan_baseline(problem: CoolingProblem,
                              method: str = "slsqp",
                              evaluator: Optional[Evaluator] = None,
                              jac: str = "analytic",
                              ) -> BaselineResult:
    """Baseline 1: optimize the fan speed of a no-TEC package."""
    if problem.has_tec:
        raise ConfigurationError(
            "Variable-omega baseline expects a no-TEC problem; build it "
            "with build_cooling_problem(..., with_tec=False)")
    result: OFTECResult = run_oftec(problem, method=method,
                                    evaluator=evaluator, jac=jac)
    return BaselineResult(
        problem_name=problem.name,
        controller="variable-omega",
        omega=result.omega_star,
        current=0.0,
        evaluation=result.evaluation,
        feasible=result.feasible,
        runaway=result.evaluation.runaway,
        runtime_seconds=result.runtime_seconds)


def run_fixed_fan_baseline(problem: CoolingProblem,
                           omega: float = OMEGA_FIXED_BASELINE,
                           evaluator: Optional[Evaluator] = None,
                           ) -> BaselineResult:
    """Baseline 2: a no-TEC package with the fan pinned (2000 RPM)."""
    if problem.has_tec:
        raise ConfigurationError(
            "Fixed-omega baseline expects a no-TEC problem; build it "
            "with build_cooling_problem(..., with_tec=False)")
    watch = stopwatch()
    evaluator = evaluator or Evaluator(problem)
    evaluation = evaluator.evaluate(omega, 0.0)
    return BaselineResult(
        problem_name=problem.name,
        controller="fixed-omega",
        omega=evaluation.omega,
        current=0.0,
        evaluation=evaluation,
        feasible=evaluation.feasible,
        runaway=evaluation.runaway,
        runtime_seconds=watch.elapsed)


def run_tec_only(problem: CoolingProblem,
                 current_samples: int = 21,
                 evaluator: Optional[Evaluator] = None) -> BaselineResult:
    """TEC-only system: fan off, sweep the current for the coolest die.

    The paper's Section 6.2 point: without forced convection there is
    nowhere for the pumped (and Joule) heat to go, so every current level
    ends in thermal runaway on realistic workloads.
    """
    if not problem.has_tec:
        raise ConfigurationError("TEC-only controller needs a TEC package")
    if current_samples < 2:
        raise ConfigurationError("current_samples must be >= 2")
    watch = stopwatch()
    evaluator = evaluator or Evaluator(problem)
    best: Optional[Evaluation] = None
    all_runaway = True
    for current in np.linspace(0.0, problem.current_upper_bound,
                               current_samples):
        evaluation = evaluator.evaluate(0.0, float(current))
        if not evaluation.runaway:
            all_runaway = False
        if best is None or (evaluation.max_chip_temperature
                            < best.max_chip_temperature):
            best = evaluation
    if best is None:
        raise SolverError(
            "TEC-only current sweep produced no evaluations")
    return BaselineResult(
        problem_name=problem.name,
        controller="tec-only",
        omega=0.0,
        current=best.current,
        evaluation=best,
        feasible=best.feasible,
        runaway=all_runaway,
        runtime_seconds=watch.elapsed)
