"""Figure 6(a): maximum die temperature over the (omega, I_TEC) plane.

Regenerates the Basicmath temperature surface and checks its published
shape: a thermal-runaway cliff at low fan speed that TEC current alone
cannot cross, a smooth bowl elsewhere, and a minimum at an interior
current (not at I = 0 and not at I = I_max).  The timed unit is one
operating-point evaluation — the atom the whole surface is built from.
"""

import numpy as np

from repro.analysis import format_surface
from repro.core import Evaluator
from repro.units import kelvin_to_celsius, rad_s_to_rpm


def test_fig6a_surface_shape(basicmath_sweep, tec_problem, benchmark):
    sweep = basicmath_sweep

    print()
    print(format_surface(sweep, "temperature", max_cols=11))

    # Paper shape 1: the omega = 0 column is thermal runaway at every
    # current ("the value of T tends to infinity for small omega").
    assert sweep.runaway_mask[0].all()

    # Paper shape 2: current alone cannot rescue the chip -- the
    # runaway boundary stays at a nonzero fan speed for every current.
    boundary = sweep.runaway_boundary_omega()
    assert np.isfinite(boundary).all()
    assert (boundary > 0.0).all()

    # Paper shape 3: the coolest point needs *both* actuators -- an
    # interior current and a healthy fan speed.
    omega_t, current_t, t_best = sweep.min_temperature_point()
    assert current_t > 0.0
    assert current_t < tec_problem.limits.i_tec_max
    assert omega_t > 0.3 * tec_problem.limits.omega_max

    print(f"coolest point: {kelvin_to_celsius(t_best):.1f} C at "
          f"{rad_s_to_rpm(omega_t):.0f} RPM / {current_t:.2f} A "
          "(paper: interior minimum near the middle of the plane)")

    # Timed unit: one (omega, I) evaluation on a fresh evaluator.
    evaluator = Evaluator(tec_problem)

    def evaluate_once():
        evaluator.clear_cache()
        return evaluator.evaluate(262.0, 1.0)

    result = benchmark(evaluate_once)
    assert not result.runaway
