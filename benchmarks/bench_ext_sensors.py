"""Extension: sensor placement and the guard band it forces.

A DTM loop reads sensors, not the true hotspot.  This bench measures the
aliasing error of three placements across the steady states of all eight
benchmarks and derives the guard band each forces below T_max — margin
that directly erodes the headroom OFTEC exploits.  The timed unit is one
guard-band evaluation over the precomputed fields.
"""

from repro.core import Evaluator
from repro.thermal import SensorArray, recommended_guard_band

PLACEMENTS = {
    # Hotspots move with the workload: integer kernels peak in the int
    # core, FP kernels in the FP cluster — a robust placement covers
    # both (sensing only the int core aliases by >10 K on FFT/Susan).
    "int+fp hot units": ["IntExec", "IntReg", "LdStQ", "FPAdd",
                         "FPMul"],
    "one per cluster": ["IntExec", "FPAdd", "LdStQ", "Bpred", "L2"],
    "caches only": ["Icache", "Dcache", "L2"],
}


def test_sensor_guard_bands(tec_problem, profiles, benchmark):
    coverage = tec_problem.coverage

    # Steady states of the whole suite at a common operating point.
    fields = []
    for name, profile in profiles.items():
        problem = tec_problem.with_profile(profile)
        evaluation = Evaluator(problem).evaluate(350.0, 0.5)
        assert not evaluation.runaway, name
        fields.append(evaluation.steady.chip_temperatures)

    print()
    print(f"{'placement':<24}{'sensors':>9}{'guard band (K)':>16}")
    bands = {}
    for label, units in PLACEMENTS.items():
        array = SensorArray.at_unit_centers(coverage, units)
        band = recommended_guard_band(array, fields, quantile=1.0)
        bands[label] = band
        print(f"{label:<24}{len(units):>9}{band:>16.2f}")

    # Sensors on the hot units track the real maximum tightly; cache
    # sensors miss it badly.
    assert bands["int+fp hot units"] < 1.0
    assert bands["caches only"] > 3.0
    assert bands["one per cluster"] <= bands["caches only"]

    array = SensorArray.at_unit_centers(
        coverage, PLACEMENTS["one per cluster"])

    def guard_band():
        return recommended_guard_band(array, fields, quantile=0.95)

    band = benchmark(guard_band)
    assert band >= 0.0
