"""Shared harness for the reproduction benches.

Every ``bench_*`` module that publishes numbers does it the same way:
a ``BENCH_N.json`` at the repository root, written deterministically
(sorted keys, trailing newline) with a ``machine`` block so archived
runs say where they came from.  Timing comparisons use interleaved
paired sampling — the two configurations are measured back to back
within each repeat so machine drift (frequency scaling, noisy
neighbors) hits both equally instead of biasing whichever ran first.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Callable, Dict, Tuple

#: Repository root — bench artifacts live next to README.md.
REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir)


def bench_json_path(filename: str) -> str:
    """Absolute path of a ``BENCH_N.json`` artifact at the repo root."""
    return os.path.join(REPO_ROOT, filename)


def machine_info() -> Dict[str, object]:
    """The host header embedded in every bench artifact."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }


def emit_bench_json(filename: str, payload: dict) -> str:
    """Write a bench payload (plus the machine header) to the repo root.

    The serialization is deterministic — ``indent=2``, sorted keys, one
    trailing newline — so reruns on the same numbers produce the same
    bytes and artifact diffs stay readable.  Returns the written path.
    """
    document = dict(payload)
    document.setdefault("machine", machine_info())
    path = bench_json_path(filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def paired_medians(sample_a: Callable[[], float],
                   sample_b: Callable[[], float],
                   repeats: int = 7) -> Tuple[float, float]:
    """Median of two timing samplers, interleaved A/B per repeat.

    Each repeat draws one sample from ``sample_a`` then one from
    ``sample_b`` before the next repeat starts, so slow drift in the
    machine's performance is shared between the configurations rather
    than attributed to one of them.  Returns ``(median_a, median_b)``.
    """
    a_values, b_values = [], []
    for _ in range(repeats):
        a_values.append(sample_a())
        b_values.append(sample_b())
    a_values.sort()
    b_values.sort()
    return a_values[repeats // 2], b_values[repeats // 2]


def paired_overhead_pct(sample_a: Callable[[], float],
                        sample_b: Callable[[], float],
                        repeats: int = 7,
                        ) -> Tuple[float, float, float]:
    """Median per-repeat overhead of B over A, in percent.

    :func:`paired_medians` medians each arm separately, which leaves
    slow drift *between* repeats (frequency scaling ramping over the
    run) attributed to whichever arm it coincided with.  Here the
    ratio is formed inside each interleaved repeat — the two samples
    of a pair run back to back, so drift cancels — and the median is
    taken over the per-pair overheads.  Returns
    ``(median_a, median_b, median_overhead_pct)``; the first two are
    the usual per-arm medians for rate reporting.
    """
    a_values, b_values, pcts = [], [], []
    for _ in range(repeats):
        a = sample_a()
        b = sample_b()
        a_values.append(a)
        b_values.append(b)
        pcts.append(100.0 * (b - a) / a)
    a_values.sort()
    b_values.sort()
    pcts.sort()
    return (a_values[repeats // 2], b_values[repeats // 2],
            pcts[repeats // 2])
