"""Figure 6(e): maximum chip temperature after Optimization 1.

The paper's observations at the power-optimal points: OFTEC deliberately
lets the temperature rise relative to its Optimization 2 point (trading
headroom for power) yet stays below T_max everywhere, and on the three
comparable benchmarks it still sits cooler than both baselines (paper:
3.7 C vs variable-omega, 3.0 C vs fixed-omega).  The timed unit is
Algorithm 1's Optimization 1 stage.
"""

from conftest import LIGHT_BENCHMARKS, PAPER_HEADLINES
from repro.analysis import format_comparison_table
from repro.core import Evaluator, minimize_power


def test_fig6e_opt1_temperatures(campaign, tec_problem, benchmark):
    print()
    print(format_comparison_table(campaign, "opt1"))

    t_max = campaign.t_max
    for comparison in campaign.comparisons:
        # OFTEC's Opt-1 point respects the constraint everywhere ...
        assert comparison.oftec_opt1.max_chip_temperature < t_max
        # ... and gives back headroom relative to its Opt-2 point.
        assert comparison.oftec_opt1.max_chip_temperature >= \
            comparison.oftec_opt2.evaluation.max_chip_temperature - 0.5

    # On the comparable (light) benchmarks OFTEC runs cooler than both
    # baselines even while spending less power.
    for name in LIGHT_BENCHMARKS:
        comparison = campaign[name]
        assert comparison.oftec_opt1.max_chip_temperature < \
            comparison.variable_opt1.max_chip_temperature, name
        assert comparison.oftec_opt1.max_chip_temperature < \
            comparison.fixed.max_chip_temperature, name

    dt_var = campaign.average_temperature_delta("variable-omega")
    dt_fix = campaign.average_temperature_delta("fixed-omega")
    print(f"OFTEC cooler by {dt_var:.1f} C vs variable-omega "
          f"(paper: {PAPER_HEADLINES['cooler_vs_variable_c']}) and "
          f"{dt_fix:.1f} C vs fixed-omega "
          f"(paper: {PAPER_HEADLINES['cooler_vs_fixed_c']})")
    assert dt_var > 0.0

    # Timed unit: the Optimization 1 stage from a feasible start.
    evaluator = Evaluator(tec_problem)
    warm = evaluator.evaluate(tec_problem.limits.omega_max / 2.0,
                              tec_problem.limits.i_tec_max / 2.0)
    assert warm.feasible

    def optimize_power():
        return minimize_power(Evaluator(tec_problem),
                              x0=(warm.omega, warm.current))

    outcome = benchmark.pedantic(optimize_power, rounds=2, iterations=1)
    assert outcome.evaluation.feasible
