"""Extension: multi-channel TEC drive vs the paper's single string.

The paper wires all TECs in series (one current for the whole die) and
cites per-region deployment work as motivation.  This bench quantifies
the next step — independently-driven channels (int core / FP cluster /
rest) — on a heavy benchmark: the multi-channel optimum must be feasible
and cheaper, with the hot channel drawing the most current.  The timed
unit is the multi-channel optimization.
"""

from repro import run_oftec
from repro.core import EV6_DEFAULT_CHANNELS, run_oftec_multichannel
from repro.units import kelvin_to_celsius, rad_s_to_rpm


def test_multichannel_extension(tec_problem, profiles, benchmark):
    heavy = tec_problem.with_profile(profiles["quicksort"])

    single = run_oftec(heavy)
    multi = run_oftec_multichannel(heavy, EV6_DEFAULT_CHANNELS)

    print()
    print(f"single string : I* = {single.current_star:.2f} A, "
          f"omega* = {rad_s_to_rpm(single.omega_star):.0f} RPM, "
          f"P = {single.total_power:.2f} W, "
          f"T = {kelvin_to_celsius(single.max_chip_temperature):.1f} C")
    currents = multi.currents_by_channel()
    channel_text = ", ".join(f"{name} {value:.2f} A"
                             for name, value in currents.items())
    print(f"multi channel : {channel_text}, "
          f"omega* = {rad_s_to_rpm(multi.omega_star):.0f} RPM, "
          f"P = {multi.total_power:.2f} W, "
          f"T = "
          f"{kelvin_to_celsius(multi.evaluation.max_chip_temperature):.1f}"
          " C")
    saving = (single.total_power - multi.total_power) \
        / single.total_power * 100.0
    print(f"multi-channel saving: {saving:.1f}% of total power")

    assert single.feasible and multi.feasible
    # The extension must not lose to its own special case.
    assert multi.total_power <= single.total_power * 1.01
    # Quicksort is integer-bound: the int-core channel leads.
    assert currents["int-core"] == max(currents.values())

    def optimize_multichannel():
        return run_oftec_multichannel(heavy, EV6_DEFAULT_CHANNELS)

    result = benchmark.pedantic(optimize_multichannel, rounds=2,
                                iterations=1)
    assert result.feasible
