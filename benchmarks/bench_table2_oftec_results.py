"""Table 2: per-benchmark OFTEC results (I*, omega*, runtime).

Regenerates the paper's result table and checks its orderings: the light
benchmarks (Basicmath, CRC32, Stringsearch) get small currents and slow
fans, the heavy five get ampere-level currents and fast fans, Quicksort
demands the most TEC current, and CRC32 the least.  Absolute runtimes
differ (MATLAB + C MEX on an i7-3770 vs pure Python + SciPy here); the
timed unit is the same quantity the paper's runtime column reports: one
complete Algorithm 1 execution.
"""

from conftest import (
    HEAVY_BENCHMARKS,
    LIGHT_BENCHMARKS,
    PAPER_TABLE2,
)
from repro import run_oftec
from repro.analysis import format_table2
from repro.units import rad_s_to_rpm


def test_table2(campaign, tec_problem, profiles, benchmark):
    print()
    print(format_table2(campaign))
    print(f"\n{'benchmark':<14}{'I* ours':>9}{'I* paper':>10}"
          f"{'omega* ours':>13}{'omega* paper':>14}")
    for comparison in campaign.comparisons:
        ours = comparison.oftec_opt1
        paper_i, paper_omega, _ = PAPER_TABLE2[comparison.name]
        print(f"{comparison.name:<14}{ours.current_star:>9.2f}"
              f"{paper_i:>10.2f}"
              f"{rad_s_to_rpm(ours.omega_star):>13.0f}"
              f"{paper_omega:>14.0f}")

    results = {c.name: c.oftec_opt1 for c in campaign.comparisons}

    # Ordering 1: light currents below heavy currents (both tables).
    light_i = max(results[n].current_star for n in LIGHT_BENCHMARKS)
    heavy_i = min(results[n].current_star for n in HEAVY_BENCHMARKS)
    assert light_i < heavy_i

    # Ordering 2: light fan speeds below heavy fan speeds.
    light_w = max(results[n].omega_star for n in LIGHT_BENCHMARKS)
    heavy_w = min(results[n].omega_star for n in HEAVY_BENCHMARKS)
    assert light_w < heavy_w

    # Ordering 3: Quicksort is among the hungriest two currents and
    # CRC32 among the thriftiest two (the paper's extremes, with slack
    # for grid-resolution jitter between close heavy benchmarks).
    ranked = sorted(results, key=lambda n: results[n].current_star)
    assert "quicksort" in ranked[-2:]
    assert "crc32" in ranked[:2]

    # Every benchmark solved feasibly with sane runtimes.
    for name, result in results.items():
        assert result.feasible, name
        assert result.runtime_seconds < 60.0, name

    # Timed unit: one full Algorithm 1 run (Table 2's runtime column).
    heavy_problem = tec_problem.with_profile(profiles["quicksort"])

    def oftec_heavy():
        return run_oftec(heavy_problem)

    result = benchmark.pedantic(oftec_heavy, rounds=2, iterations=1)
    assert result.feasible
