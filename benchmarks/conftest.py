"""Shared fixtures for the reproduction benches.

Each ``bench_*`` module regenerates one table or figure of the paper and
times a representative unit of its computation with pytest-benchmark.
Heavy artifacts (the full three-method campaign, the objective-surface
sweeps) are computed once per session and shared.

Set ``REPRO_BENCH_RESOLUTION`` to trade fidelity for speed (default 12;
the paper-facing numbers in EXPERIMENTS.md use 16).
"""

from __future__ import annotations

import os

import pytest

from repro import build_cooling_problem, mibench_profiles
from repro.analysis import run_campaign, sweep_objective_surfaces


def bench_resolution() -> int:
    """Grid resolution used by the benches."""
    return int(os.environ.get("REPRO_BENCH_RESOLUTION", "12"))


@pytest.fixture(scope="session")
def resolution():
    return bench_resolution()


@pytest.fixture(scope="session")
def profiles():
    return mibench_profiles()


@pytest.fixture(scope="session")
def tec_problem(profiles, resolution):
    """TEC-equipped problem template (Basicmath workload)."""
    return build_cooling_problem(profiles["basicmath"],
                                 grid_resolution=resolution)


@pytest.fixture(scope="session")
def baseline_problem(profiles, resolution):
    """No-TEC baseline problem template."""
    return build_cooling_problem(profiles["basicmath"], with_tec=False,
                                 grid_resolution=resolution)


@pytest.fixture(scope="session")
def campaign(profiles, tec_problem, baseline_problem):
    """The full three-method, eight-benchmark campaign (run once)."""
    return run_campaign(profiles, tec_problem, baseline_problem,
                        include_tec_only=True)


@pytest.fixture(scope="session")
def basicmath_sweep(tec_problem):
    """The Figure 6(a)/(b) objective-surface sweep for Basicmath."""
    return sweep_objective_surfaces(tec_problem, omega_points=14,
                                    current_points=11)


# Paper-reported reference values (qualitative targets; see DESIGN.md
# Section 6 and EXPERIMENTS.md for the comparison discipline).
PAPER_TABLE2 = {
    # benchmark: (I*_TEC A, omega* RPM, runtime ms)
    "basicmath": (0.68, 1352, 426),
    "bitcount": (2.30, 2451, 693),
    "crc32": (0.37, 1114, 239),
    "djkstra": (1.14, 2516, 430),
    "fft": (0.99, 2490, 353),
    "quicksort": (2.83, 2433, 385),
    "stringsearch": (0.74, 1399, 278),
    "susan": (1.81, 2509, 690),
}

PAPER_HEADLINES = {
    "baseline_failures": 5,          # of 8 benchmarks
    "oftec_failures": 0,
    "saving_vs_variable_pct": 2.6,   # on the 3 comparable benchmarks
    "saving_vs_fixed_pct": 8.1,
    "cooler_vs_variable_c": 3.7,
    "cooler_vs_fixed_c": 3.0,
    "opt2_advantage_c": 13.0,
    "avg_runtime_ms": 437,
}

LIGHT_BENCHMARKS = ("basicmath", "crc32", "stringsearch")
HEAVY_BENCHMARKS = ("bitcount", "djkstra", "fft", "quicksort", "susan")
