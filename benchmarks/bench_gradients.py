"""Adjoint gradient pipeline: analytic-vs-FD solver economics.

Not a paper figure — this bench guards the adjoint differentiation
path: Algorithm 1 is run over all eight benchmarks and both solver
backends twice, once with analytic (adjoint) gradients and once with
the legacy finite-difference mode, interleaved per benchmark so
machine drift hits both arms equally.  Three claims are checked and
written to ``BENCH_7.json`` at the repository root:

* the analytic arm consumes >= 3x fewer steady-state solves in
  aggregate (adjoint back-substitutions are counted separately and
  reported, not hidden inside the solve column);
* the two arms land on the same optimum per benchmark to within
  solver tolerance;
* every analytic run actually exercised the adjoint (nonzero
  transposed-solve count).

The two backends pay very differently for numerical derivatives:
SLSQP's probe points are shared between the objective and constraint
jacobians through the evaluator's LRU cache (~3 unique points per
iteration, so the adjoint saves ~2.5x), while trust-constr
finite-differences the objective and the ``NonlinearConstraint``
across every trust-region step (order-of-magnitude savings).  The
per-method ratios are reported separately; the >= 3x gate applies to
the aggregate.
"""

import time

from _common import emit_bench_json
from repro.core import SOLVER_METHODS, Evaluator, run_oftec

#: Aggregate steady-state-solve reduction the analytic arm must beat.
MIN_SOLVE_REDUCTION = 3.0


def _run_arm(problem, method, jac):
    """One Algorithm 1 run; returns (result, evaluator, wall seconds)."""
    evaluator = Evaluator(problem)
    start = time.perf_counter()
    result = run_oftec(problem, method=method, evaluator=evaluator,
                       jac=jac)
    wall = time.perf_counter() - start
    return result, evaluator, wall


def test_gradient_solver_economics_and_emit(profiles, tec_problem,
                                            resolution):
    """Analytic-vs-FD solve counts and optimum agreement across all
    eight benchmarks and both solver backends; emits BENCH_7.json."""
    gradient_methods = [m for m in SOLVER_METHODS if m != "grid"]
    assert gradient_methods == ["slsqp", "trust-constr"]
    per_method = {}
    total_analytic = 0
    total_fd = 0
    for method in gradient_methods:
        rows = {}
        method_analytic = 0
        method_fd = 0
        for name in sorted(profiles):
            problem = tec_problem.with_profile(profiles[name])
            analytic, evaluator_a, wall_a = _run_arm(
                problem, method, "analytic")
            fd, _, wall_f = _run_arm(problem, method, "fd")

            assert analytic.feasible == fd.feasible
            if analytic.feasible:
                # Same optimum to within solver tolerance (the
                # adjoint changes the search trajectory, not the
                # landscape).  The bound is looser than the solver's
                # own ftol because the FD arm sometimes exhausts its
                # iteration budget at coarse resolutions and stalls
                # epsilon short of the optimum the analytic arm
                # reaches.
                assert abs(analytic.total_power - fd.total_power) \
                    <= 2e-3 * abs(fd.total_power) + 1e-6, (method,
                                                           name)
                assert abs(analytic.omega_star - fd.omega_star) \
                    <= 1e-2 * problem.limits.omega_max, (method, name)
            # The analytic arm must really have used the adjoint.
            assert evaluator_a.adjoint_solve_count > 0

            method_analytic += analytic.thermal_solves
            method_fd += fd.thermal_solves
            rows[name] = {
                "feasible": analytic.feasible,
                "analytic": {
                    "thermal_solves": analytic.thermal_solves,
                    "adjoint_solves": evaluator_a.adjoint_solve_count,
                    "wall_seconds": wall_a,
                    "omega_star": analytic.omega_star,
                    "current_star": analytic.current_star,
                    "total_power": analytic.total_power,
                },
                "fd": {
                    "thermal_solves": fd.thermal_solves,
                    "wall_seconds": wall_f,
                    "omega_star": fd.omega_star,
                    "current_star": fd.current_star,
                    "total_power": fd.total_power,
                },
            }
        reduction = method_fd / method_analytic
        print(f"{method}: {method_fd} fd solves vs {method_analytic} "
              f"analytic ({reduction:.2f}x reduction)")
        per_method[method] = {
            "analytic_thermal_solves": method_analytic,
            "fd_thermal_solves": method_fd,
            "solve_reduction": reduction,
            "per_benchmark": rows,
        }
        total_analytic += method_analytic
        total_fd += method_fd

    reduction = total_fd / total_analytic
    print(f"aggregate: {total_fd} fd solves vs {total_analytic} "
          f"analytic ({reduction:.2f}x reduction)")
    emit_bench_json("BENCH_7.json", {
        "bench": "gradient_solver_economics",
        "grid_resolution": resolution,
        "benchmarks": len(profiles),
        "totals": {
            "analytic_thermal_solves": total_analytic,
            "fd_thermal_solves": total_fd,
            "solve_reduction": reduction,
        },
        "per_method": per_method,
    })

    assert reduction >= MIN_SOLVE_REDUCTION
