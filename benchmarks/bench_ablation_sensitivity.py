"""Ablation: which physical parameters move the OFTEC optimum.

Perturbs the TEC figure-of-merit ingredients, the fan constant, and the
ambient temperature by +/-20 % and reruns Algorithm 1.  The assertions
encode the physics the paper leans on: better thermoelectric material
(higher Seebeck) reduces total power; a hotter ambient increases it; a
cheaper fan never hurts.  The timed unit is one perturbed re-optimization.
"""

from repro.analysis import (
    format_sensitivity_report,
    run_sensitivity_study,
)


def test_parameter_sensitivity(profiles, resolution, benchmark):
    report = run_sensitivity_study(
        profiles["basicmath"],
        parameters=["tec_seebeck", "tec_resistance",
                    "fan_power_constant", "ambient_temperature"],
        scales=[0.8, 1.2],
        grid_resolution=min(resolution, 8))

    print()
    print(format_sensitivity_report(report))

    grouped = report.by_parameter()

    # Hotter ambient always costs power (both scales bracket nominal).
    hot = next(e for e in grouped["ambient_temperature"]
               if e.scale > 1.0)
    cool = next(e for e in grouped["ambient_temperature"]
                if e.scale < 1.0)
    assert hot.d_power > 0.0
    assert cool.d_power < 0.0

    # A cheaper fan can only help.
    cheap_fan = next(e for e in grouped["fan_power_constant"]
                     if e.scale < 1.0)
    assert cheap_fan.d_power <= 0.005

    # Ambient temperature dominates the +/-20% studies: it moves both
    # the leakage operating point and the whole thermal budget.
    assert report.most_sensitive_parameter() == "ambient_temperature"

    def one_perturbation():
        return run_sensitivity_study(
            profiles["basicmath"], parameters=["tec_seebeck"],
            scales=[1.2], grid_resolution=6)

    result = benchmark.pedantic(one_perturbation, rounds=2,
                                iterations=1)
    assert result.nominal.feasible
