"""Extension: the DVFS cost of not having TECs.

Section 6.2 notes that workloads the baselines cannot cool "should be
further cooled down using other thermal management techniques such as
reducing the voltage/frequency ... which leads to performance
degradation".  This bench puts a number on that degradation: the maximum
frequency each heavy benchmark can sustain under the no-TEC baseline vs
under OFTEC.  The timed unit is one max-frequency search.
"""

from conftest import HEAVY_BENCHMARKS
from repro.core import find_max_frequency


def test_dvfs_throttling_cost(tec_problem, baseline_problem, profiles,
                              benchmark):
    print()
    print(f"{'benchmark':<14}{'baseline f_max':>16}"
          f"{'OFTEC f_max':>13}{'perf. saved by TECs':>21}")
    saved_any = False
    for name in HEAVY_BENCHMARKS[:3]:  # three representatives
        base = find_max_frequency(
            baseline_problem.with_profile(profiles[name]),
            tolerance=0.02)
        hybrid = find_max_frequency(
            tec_problem.with_profile(profiles[name]), tolerance=0.02)
        saved = (hybrid.scaling - base.scaling) * 100.0
        print(f"{name:<14}{base.scaling:>15.2f}x"
              f"{hybrid.scaling:>12.2f}x{saved:>20.1f}%")
        # The baseline must throttle; OFTEC must throttle less (and in
        # the calibrated setup, not at all).
        assert base.feasible
        assert base.scaling < 1.0, name
        assert hybrid.scaling > base.scaling, name
        if hybrid.scaling >= 0.999:
            saved_any = True
    assert saved_any  # OFTEC sustains nominal frequency somewhere

    heavy_baseline = baseline_problem.with_profile(
        profiles["quicksort"])

    def search():
        return find_max_frequency(heavy_baseline, tolerance=0.05)

    result = benchmark.pedantic(search, rounds=2, iterations=1)
    assert result.feasible
