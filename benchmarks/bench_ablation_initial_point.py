"""Ablation: Algorithm 1's initial point.

The paper picks (omega_max/2, I_max/2) because the Optimization 2
minimum empirically sits near the middle of the plane (Figure 6(a)).
This bench compares that choice against the plane's corners, counting
thermal solves to a feasible point and checking final quality; the timed
unit is Optimization 2 from the paper's midpoint.
"""

from repro.core import Evaluator, minimize_temperature

STARTS = {
    "midpoint (paper)": (0.5, 0.5),
    "origin": (0.05, 0.0),
    "max omega, no TEC": (1.0, 0.0),
    "no fan, max TEC": (0.05, 1.0),
    "both max": (1.0, 1.0),
}


def test_initial_point_ablation(tec_problem, profiles, benchmark):
    heavy = tec_problem.with_profile(profiles["quicksort"])
    limits = heavy.limits

    print()
    print(f"{'start':<20}{'T (C)':>9}{'solves':>9}{'feasible':>10}")
    outcomes = {}
    for label, (omega_frac, current_frac) in STARTS.items():
        evaluator = Evaluator(heavy)
        outcome = minimize_temperature(
            evaluator,
            x0=(omega_frac * limits.omega_max,
                current_frac * limits.i_tec_max))
        outcomes[label] = (outcome, evaluator.solve_count)
        print(f"{label:<20}"
              f"{outcome.evaluation.max_chip_temperature - 273.15:>9.1f}"
              f"{evaluator.solve_count:>9}"
              f"{str(outcome.evaluation.feasible):>10}")

    # The paper's midpoint start must find a feasible point.
    midpoint_outcome, midpoint_solves = outcomes["midpoint (paper)"]
    assert midpoint_outcome.evaluation.feasible

    # It should be competitive with the best start in solution quality.
    best_t = min(o.evaluation.max_chip_temperature
                 for o, _ in outcomes.values())
    assert midpoint_outcome.evaluation.max_chip_temperature \
        <= best_t + 3.0

    # Timed unit: Optimization 2 from the paper's midpoint.
    def opt2_from_midpoint():
        return minimize_temperature(Evaluator(heavy))

    result = benchmark.pedantic(opt2_from_midpoint, rounds=2,
                                iterations=1)
    assert result.evaluation.feasible
