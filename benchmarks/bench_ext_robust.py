"""Extension: robust (min-max) OFTEC over a workload envelope.

When the controller cannot switch operating points (fixed firmware, a
shared cooling zone), one ``(omega, I)`` must cover the whole workload
set.  This bench quantifies the price of that rigidity: the robust point
is feasible for every member, costs at least as much as the heaviest
member's own optimum, and wastes power on the light members relative to
per-workload control.  The timed unit is the min-max optimization.
"""

from repro import run_oftec
from repro.core import run_oftec_robust
from repro.units import rad_s_to_rpm

WORKLOADS = ("basicmath", "fft", "quicksort")


def test_robust_oftec(tec_problem, profiles, benchmark):
    problems = [tec_problem.with_profile(profiles[name])
                for name in WORKLOADS]
    robust = run_oftec_robust(problems)
    individual = {name: run_oftec(problem)
                  for name, problem in zip(WORKLOADS, problems)}

    print()
    print(f"robust point: omega* = "
          f"{rad_s_to_rpm(robust.omega_star):.0f} RPM, "
          f"I* = {robust.current_star:.2f} A, worst-case P = "
          f"{robust.worst_case_power:.2f} W")
    print(f"{'workload':<12}{'robust P (W)':>14}"
          f"{'per-workload P (W)':>20}{'rigidity cost':>15}")
    for name in WORKLOADS:
        at_robust = robust.per_workload[name].total_power
        own = individual[name].total_power
        print(f"{name:<12}{at_robust:>14.2f}{own:>20.2f}"
              f"{(at_robust - own):>+14.2f}W")

    # Feasible for every member.
    assert robust.feasible
    for name in WORKLOADS:
        assert robust.per_workload[name].feasible, name

    # Never beats the heaviest member's own optimum ...
    assert robust.worst_case_power >= \
        individual["quicksort"].total_power * 0.98
    # ... and over-cools the light member (the rigidity cost is real).
    assert robust.per_workload["basicmath"].total_power > \
        individual["basicmath"].total_power

    def optimize_robust():
        return run_oftec_robust(problems)

    result = benchmark.pedantic(optimize_robust, rounds=2,
                                iterations=1)
    assert result.feasible
