"""Ablation: CNLP solver backends (the paper's Section 5.2 comparison).

The paper tried interior-point, trust-region, and active-set SQP and
chose SQP for solution quality and speed.  This bench runs Optimization 1
with each backend on the same instance and compares solution quality and
thermal-solve counts; the timed unit is the default (SLSQP) pipeline.
"""

import pytest

from repro.core import (
    Evaluator,
    SOLVER_METHODS,
    minimize_power,
    minimize_temperature,
)


def run_with(problem, method):
    evaluator = Evaluator(problem)
    start = minimize_temperature(evaluator, method="slsqp")
    outcome = minimize_power(
        evaluator, x0=(start.omega, start.current), method=method)
    return outcome, evaluator.solve_count


def test_solver_backend_ablation(tec_problem, benchmark):
    print()
    print(f"{'method':<14}{'P (W)':>9}{'T (C)':>9}{'feasible':>10}"
          f"{'thermal solves':>16}")
    outcomes = {}
    for method in SOLVER_METHODS:
        outcome, solves = run_with(tec_problem, method)
        outcomes[method] = outcome
        print(f"{method:<14}{outcome.evaluation.total_power:>9.2f}"
              f"{outcome.evaluation.max_chip_temperature - 273.15:>9.1f}"
              f"{str(outcome.evaluation.feasible):>10}"
              f"{solves:>16}")

    # All backends land feasible and within a few percent of each other
    # (the paper: the non-convexities are minor, so all three work; SQP
    # is simply the fastest-best).
    powers = [o.evaluation.total_power for o in outcomes.values()]
    assert all(o.evaluation.feasible for o in outcomes.values())
    assert max(powers) < min(powers) * 1.15

    # The active-set SQP default must not be dominated in quality.
    assert outcomes["slsqp"].evaluation.total_power \
        <= min(powers) * 1.05

    def slsqp_pipeline():
        return run_with(tec_problem, "slsqp")[0]

    result = benchmark.pedantic(slsqp_pipeline, rounds=2, iterations=1)
    assert result.evaluation.feasible


def test_unknown_method_rejected(tec_problem):
    from repro.errors import SolverError
    with pytest.raises(SolverError):
        minimize_power(Evaluator(tec_problem), x0=(262.0, 1.0),
                       method="simplex")
