"""Figure 6(d): cooling power after Optimization 2.

The paper's observation: when the objective is the minimum temperature,
OFTEC spends the *most* power of the three methods — the extra watts go
into the TEC string running hard.  The timed unit is the TEC-power
bookkeeping (Equation 12 evaluation) on a solved state.
"""

import numpy as np


def test_fig6d_opt2_power(campaign, tec_problem, benchmark):
    print()
    print(f"{'benchmark':<14}{'OFTEC P(W)':>12}{'var P(W)':>10}"
          f"{'fix P(W)':>10}{'OFTEC TEC share':>17}")
    for comparison in campaign.comparisons:
        oftec_eval = comparison.oftec_opt2.evaluation
        share = oftec_eval.tec_power / oftec_eval.total_power * 100.0
        print(f"{comparison.name:<14}"
              f"{oftec_eval.total_power:>12.2f}"
              f"{comparison.variable_opt2.evaluation.total_power:>10.2f}"
              f"{comparison.fixed.evaluation.total_power:>10.2f}"
              f"{share:>16.1f}%")

    # Paper shape: OFTEC has the highest power under Optimization 2 on
    # every benchmark, and the excess is mostly TEC power.
    for comparison in campaign.comparisons:
        oftec_eval = comparison.oftec_opt2.evaluation
        assert oftec_eval.total_power > \
            comparison.variable_opt2.evaluation.total_power, \
            comparison.name
        assert oftec_eval.total_power > \
            comparison.fixed.evaluation.total_power, comparison.name
        assert oftec_eval.tec_power > 0.2 * oftec_eval.total_power, \
            comparison.name

    # Timed unit: Equation (12) bookkeeping on a solved thermal state.
    from repro.core import Evaluator
    evaluation = Evaluator(tec_problem).evaluate(300.0, 2.0)
    steady = evaluation.steady
    model = tec_problem.model
    array = model.tec_array

    def tec_power_accounting():
        cold, hot = model.tec_face_temperatures(steady.temperatures)
        return array.total_power(cold, hot, 2.0)

    power = benchmark(tec_power_accounting)
    assert np.isfinite(power) and power > 0.0
