"""Figure 6(f): cooling power after Optimization 1 — the headline chart.

OFTEC has the lowest total power of the three methods on the comparable
benchmarks (paper: −2.6% / −0.35 W vs variable-omega, −8.1% / −1.04 W vs
fixed-omega, −5.4% averaged across the two baselines).  The timed unit
is the complete Algorithm 1 run on a light benchmark.
"""

from conftest import LIGHT_BENCHMARKS, PAPER_HEADLINES
from repro import run_oftec


def test_fig6f_opt1_power(campaign, tec_problem, benchmark):
    print()
    print(f"{'benchmark':<14}{'OFTEC P(W)':>12}{'var P(W)':>10}"
          f"{'fix P(W)':>10}{'save vs var':>13}{'save vs fix':>13}")
    for name in LIGHT_BENCHMARKS:
        comparison = campaign[name]
        ours = comparison.oftec_opt1.total_power
        var = comparison.variable_opt1.total_power
        fix = comparison.fixed.total_power
        print(f"{name:<14}{ours:>12.2f}{var:>10.2f}{fix:>10.2f}"
              f"{(var - ours) / var * 100:>12.1f}%"
              f"{(fix - ours) / fix * 100:>12.1f}%")

    # Paper shape: OFTEC cheapest on every comparable benchmark.
    for name in LIGHT_BENCHMARKS:
        comparison = campaign[name]
        assert comparison.oftec_opt1.total_power < \
            comparison.variable_opt1.total_power, name
        assert comparison.oftec_opt1.total_power < \
            comparison.fixed.total_power, name

    save_var = campaign.average_power_saving("variable-omega") * 100.0
    save_fix = campaign.average_power_saving("fixed-omega") * 100.0
    averaged = (save_var + save_fix) / 2.0
    print(f"\naverage saving: {save_var:.1f}% vs variable-omega "
          f"(paper: {PAPER_HEADLINES['saving_vs_variable_pct']}%), "
          f"{save_fix:.1f}% vs fixed-omega "
          f"(paper: {PAPER_HEADLINES['saving_vs_fixed_pct']}%), "
          f"{averaged:.1f}% averaged (paper abstract: 5.4%)")
    assert save_var > 0.0
    assert save_fix > save_var  # fixed-omega wastes more, as published

    # Timed unit: full Algorithm 1 on the light Basicmath workload --
    # the direct analogue of a Table 2 runtime cell.
    def full_oftec():
        return run_oftec(tec_problem)

    result = benchmark.pedantic(full_oftec, rounds=2, iterations=1)
    assert result.feasible
