"""The Figure 5 front end: microarchitectural power simulation.

Exercises the PTscalar-substitute pipeline (program -> activity ->
power trace -> max profile) for all eight benchmarks and asserts the
workload characters the paper's setup relies on: integer kernels heat
the integer core, FP kernels the FP cluster, streaming kernels the L2,
and the heavy/light total-power split survives the first-principles
regeneration.  The timed unit is one full benchmark simulation.
"""

from repro.uarch import (
    UnitPowerModel,
    mibench_programs,
    simulate_power_trace,
)


def test_uarch_front_end(benchmark):
    programs = mibench_programs()
    power_model = UnitPowerModel.for_floorplan(total_peak=120.0)

    profiles = {}
    print()
    print(f"{'benchmark':<14}{'max total (W)':>14}  hottest unit")
    for name, program in programs.items():
        trace = simulate_power_trace(program, power_model,
                                     sample_interval=0.02)
        profile = trace.max_profile()
        profiles[name] = profile
        hottest = max(profile.unit_power, key=profile.unit_power.get)
        print(f"{name:<14}{profile.total_power:>14.1f}  {hottest}")

    # Workload characters.
    assert profiles["bitcount"].unit_power["IntExec"] > \
        profiles["bitcount"].unit_power["FPAdd"]
    assert profiles["fft"].unit_power["FPAdd"] > \
        profiles["fft"].unit_power["IntQ"]
    assert profiles["djkstra"].unit_power["L2"] > \
        profiles["bitcount"].unit_power["L2"]

    # Heavy/light split: the three integer/FP kernels out-draw the
    # memory-bound streamer.
    assert profiles["crc32"].total_power < min(
        profiles[name].total_power
        for name in ("bitcount", "quicksort", "susan"))

    # Traces respect the peak budget.
    for profile in profiles.values():
        assert profile.total_power <= power_model.total_peak + 1e-9

    def simulate_one():
        return simulate_power_trace(programs["quicksort"], power_model,
                                    sample_interval=0.02)

    trace = benchmark(simulate_one)
    assert trace.sample_count > 0
