"""Section 6.2 claim: a TEC-only system cannot avoid thermal runaway.

Sweeps the TEC current with the fan off (natural convection only) on
every benchmark and verifies that no current level produces a bounded
steady state — the pumped heat plus Joule heat has nowhere to go.  The
timed unit is one runaway detection (a failed steady-state solve), which
is the expensive path of the evaluator.
"""

from repro.core import Evaluator


def test_tec_only_runaway(campaign, tec_problem, profiles, benchmark):
    print()
    print(f"{'benchmark':<14}{'best current (A)':>17}"
          f"{'outcome':>18}")
    for comparison in campaign.comparisons:
        tec_only = comparison.tec_only
        assert tec_only is not None
        outcome = "thermal runaway" if tec_only.runaway else "bounded"
        print(f"{comparison.name:<14}{tec_only.current:>17.2f}"
              f"{outcome:>18}")
        # The paper's claim holds on every benchmark.
        assert tec_only.runaway, comparison.name
        assert not tec_only.feasible, comparison.name

    # Timed unit: one runaway detection at omega = 0.
    heavy_problem = tec_problem.with_profile(profiles["quicksort"])

    def detect_runaway():
        evaluator = Evaluator(heavy_problem)
        return evaluator.evaluate(0.0, 2.0)

    evaluation = benchmark.pedantic(detect_runaway, rounds=3,
                                    iterations=1)
    assert evaluation.runaway
