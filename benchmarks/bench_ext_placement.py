"""Extension: thread placement and cooling control co-optimization.

On the quad-core die, where the hot threads sit changes what the cooling
system must fight.  This bench searches all distinct two-hot-thread
placements with OFTEC evaluating each: placements separated by the L2
spine must beat directly-abutting ones, and the cheap spread-score
heuristic must agree with the thermal ranking's verdict.  The timed unit
is one candidate evaluation (placement -> power map -> OFTEC).
"""

from repro import build_cooling_problem, run_oftec
from repro.core import (
    CMP4_ADJACENCY,
    optimize_thread_placement,
)
from repro.geometry import (
    CMP4_CACHE_UNITS,
    CellCoverage,
    Grid,
    cmp4_floorplan,
    cmp4_unit_power,
)
from repro.tec import coverage_mask_excluding


def _cmp_template(resolution):
    floorplan = cmp4_floorplan()
    grid = Grid.for_floorplan(floorplan, resolution, resolution)
    coverage = CellCoverage(floorplan, grid)
    mask = coverage_mask_excluding(coverage, CMP4_CACHE_UNITS)
    return build_cooling_problem(
        cmp4_unit_power([5.0] * 4), name="cmp-template",
        floorplan=floorplan, grid_resolution=resolution,
        tec_coverage_mask=mask)


def test_thread_placement(resolution, benchmark):
    template = _cmp_template(min(resolution, 10))
    result = optimize_thread_placement(
        template, thread_powers=[22.0, 22.0], idle_power=2.0)

    print()
    print(f"{'assignment (core->thread)':<28}{'P (W)':>9}")
    for assignment, cost in result.ranking:
        print(f"{str(assignment):<28}{cost:>9.3f}")
    print(f"best: {result.assignment} at "
          f"{result.oftec.total_power:.2f} W "
          f"({result.evaluated} candidates)")

    assert result.oftec.feasible

    def is_abutting(assignment):
        hot = [c for c, t in enumerate(assignment) if t >= 0]
        return hot[1] in CMP4_ADJACENCY[hot[0]]

    abutting = [cost for a, cost in result.ranking if is_abutting(a)]
    separated = [cost for a, cost in result.ranking
                 if not is_abutting(a)]
    # Spine-separated placements beat direct abutment.
    assert min(separated) < min(abutting)
    assert not is_abutting(result.assignment)

    def one_candidate():
        problem = template.with_profile(
            cmp4_unit_power([22.0, 2.0, 22.0, 2.0]), name="cand")
        return run_oftec(problem)

    outcome = benchmark.pedantic(one_candidate, rounds=2, iterations=1)
    assert outcome.feasible
