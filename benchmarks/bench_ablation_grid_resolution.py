"""Ablation: thermal grid resolution.

DESIGN.md's compact-model trade-off: more grid cells mean higher
fidelity (sharper hotspots) and slower solves.  This bench quantifies
both sides — how the OFTEC operating point moves with resolution and how
the per-evaluation cost scales — and times a steady-state solve at the
production resolution.
"""

from repro import build_cooling_problem, mibench_profiles, run_oftec
from repro.core import Evaluator
from repro.units import kelvin_to_celsius, rad_s_to_rpm

RESOLUTIONS = (6, 8, 12, 16)


def test_grid_resolution_ablation(benchmark):
    profile = mibench_profiles()["basicmath"]

    print()
    print(f"{'grid':>6}{'nodes':>8}{'I* (A)':>9}{'omega* (RPM)':>14}"
          f"{'T (C)':>8}{'P (W)':>8}{'runtime (ms)':>14}")
    results = {}
    for resolution in RESOLUTIONS:
        problem = build_cooling_problem(profile,
                                        grid_resolution=resolution)
        result = run_oftec(problem)
        results[resolution] = (problem, result)
        print(f"{resolution:>4}x{resolution:<2}"
              f"{problem.model.network.node_count:>7}"
              f"{result.current_star:>9.2f}"
              f"{rad_s_to_rpm(result.omega_star):>14.0f}"
              f"{kelvin_to_celsius(result.max_chip_temperature):>8.1f}"
              f"{result.total_power:>8.2f}"
              f"{result.runtime_seconds * 1e3:>14.0f}")

    # Fidelity: hotspots sharpen with resolution, so the coarsest grid
    # must not report a *hotter* die than the finest.
    coarse_t = results[RESOLUTIONS[0]][1].max_chip_temperature
    fine_t = results[RESOLUTIONS[-1]][1].max_chip_temperature
    assert coarse_t <= fine_t + 1.0

    # Stability: the power optimum moves by < 25% across a ~7x node
    # count change.
    powers = [r.total_power for _, r in results.values()]
    assert max(powers) < min(powers) * 1.25

    # All feasible at every resolution.
    assert all(r.feasible for _, r in results.values())

    # Timed unit: one steady-state evaluation at production resolution.
    problem16, _ = results[16]
    evaluator = Evaluator(problem16)

    def solve_once():
        evaluator.clear_cache()
        return evaluator.evaluate(262.0, 1.0)

    evaluation = benchmark(solve_once)
    assert not evaluation.runaway
