"""Extension: online interval control over a phase-hopping workload.

The paper's deployment story (Section 6.2): precompute OFTEC solutions
into a lookup table so control decisions are immediate.  This bench runs
the closed loop on a trace that hops from a light to a heavy workload
and compares the LUT policy against static worst-case cooling: the LUT
must track the workload, spend less cooling energy, and keep the die
below T_max.  The timed unit is one closed-loop second.
"""

from repro import run_oftec
from repro.core import (
    LookupTableController,
    lut_policy,
    run_online_controller,
    static_policy,
)
from repro.power import TraceGenerator, concatenate_traces


def _hopping_trace(profiles, generator):
    """basicmath then quicksort then basicmath, 1.5 s each."""
    segments = [
        generator.generate(profiles[name], duration=1.5,
                           sample_interval=0.05)
        for name in ("basicmath", "quicksort", "basicmath")
    ]
    return concatenate_traces(segments, name="hopping")


def test_online_control(tec_problem, profiles, benchmark):
    generator = TraceGenerator(seed=11)
    trace = _hopping_trace(profiles, generator)

    table = LookupTableController(
        tec_problem.coverage.floorplan.unit_names)
    table.precompute(tec_problem,
                     {name: profiles[name].unit_power
                      for name in ("basicmath", "quicksort")})
    worstcase = run_oftec(
        tec_problem.with_profile(profiles["quicksort"]))

    adaptive = run_online_controller(
        tec_problem, trace, lut_policy(table),
        control_interval=0.5, dt=0.05)
    static = run_online_controller(
        tec_problem, trace,
        static_policy(worstcase.omega_star, worstcase.current_star),
        control_interval=0.5, dt=0.05)

    print()
    print(f"{'policy':<22}{'peak T (C)':>12}{'cooling E (J)':>15}"
          f"{'violation (s)':>15}")
    for label, outcome in (("LUT (adaptive)", adaptive),
                           ("static worst-case", static)):
        print(f"{label:<22}{outcome.peak_temperature - 273.15:>12.1f}"
              f"{outcome.cooling_energy:>15.2f}"
              f"{outcome.violation_time:>15.2f}")

    # The LUT adapts: less cooling energy than always-worst-case ...
    assert adaptive.cooling_energy < static.cooling_energy
    # ... without thermal violations.
    assert adaptive.violation_time == 0.0
    # The decisions actually changed across phases.
    applied = {(round(d.omega), round(d.current, 2))
               for d in adaptive.decisions}
    assert len(applied) >= 2

    def one_second():
        return run_online_controller(
            tec_problem, trace.window(0.0, 1.0), lut_policy(table),
            control_interval=0.5, dt=0.05)

    outcome = benchmark.pedantic(one_second, rounds=2, iterations=1)
    assert outcome.peak_temperature < tec_problem.limits.t_max
