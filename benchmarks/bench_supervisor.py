"""Supervised executor: overhead of supervision on a fault-free run.

Not a paper figure — this bench guards the ``repro.exec.supervisor``
failure-domain machinery: the same campaign is run through the plain
``ProcessPoolExecutor`` path and through the supervised worker pool
(heartbeats beating, deadlines armed, no faults injected), both at the
same worker count.  The canonical JSON digests are required to match
bit-for-bit — supervision must never perturb the physics — and the
per-pair median overhead is written to ``BENCH_6.json`` at the
repository root.

The overhead bar is deliberately loose (50% on a reduced grid, where
fixed per-unit costs dominate): supervision pays one extra process
round-trip per unit plus the heartbeat thread, and the bench exists to
catch accidental serialization (e.g. a coordinator poll loop starving
dispatch), not to shave milliseconds.
"""

import hashlib
import json

from _common import emit_bench_json, paired_overhead_pct
from repro.analysis import run_campaign
from repro.exec import SupervisionPolicy
from repro.io import campaign_to_dict

WORKERS = 2
REPEATS = 3


def _canonical_digest(campaign):
    """sha256 of the timing-free canonical JSON of a campaign."""
    payload = campaign_to_dict(campaign, canonical=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def test_supervision_overhead_and_emit(profiles, tec_problem,
                                       baseline_problem, resolution):
    """Plain-pool vs supervised wall time and bit-identity; emits
    BENCH_6.json."""
    digests = {"plain": set(), "supervised": set()}

    def sample_plain():
        campaign = run_campaign(profiles, tec_problem,
                                baseline_problem, workers=WORKERS)
        digests["plain"].add(_canonical_digest(campaign))
        return campaign.wall_seconds

    def sample_supervised():
        campaign = run_campaign(profiles, tec_problem,
                                baseline_problem, workers=WORKERS,
                                supervision=SupervisionPolicy())
        stats = campaign.worker_stats["supervision"]
        # Fault-free: nothing retried, nothing quarantined, circuit
        # closed — the supervised pool ran the same units once each.
        assert stats["retries"] == 0
        assert stats["quarantined"] == 0
        assert not stats["circuit_opened"]
        digests["supervised"].add(_canonical_digest(campaign))
        return campaign.wall_seconds

    plain_s, supervised_s, overhead_pct = paired_overhead_pct(
        sample_plain, sample_supervised, repeats=REPEATS)

    # Supervision must never perturb the physics: every run, either
    # executor, produced the same canonical document.
    assert len(digests["plain"] | digests["supervised"]) == 1
    digest = next(iter(digests["plain"]))

    print(f"\nplain pool:  {plain_s:.2f} s wall @ {WORKERS} workers")
    print(f"supervised:  {supervised_s:.2f} s wall @ {WORKERS} workers "
          f"({overhead_pct:+.1f}%)")

    emit_bench_json("BENCH_6.json", {
        "bench": "supervisor_overhead",
        "grid_resolution": resolution,
        "workers": WORKERS,
        "repeats": REPEATS,
        "benchmarks": len(profiles),
        "canonical_digest": digest,
        "plain": {"wall_seconds": plain_s},
        "supervised": {"wall_seconds": supervised_s},
        "overhead_pct": overhead_pct,
    })

    assert overhead_pct <= 50.0
