"""Observability overhead: the telemetry plane must be near-free.

Two claims are measured and written to ``BENCH_4.json`` at the
repository root:

* **disabled**: with no telemetry session installed, the instrumented
  seams cost one attribute check — warm-solve throughput stays at the
  BENCH_3.json level;
* **enabled**: a full tracing + metrics session adds bounded overhead
  (budget: <5% on warm solves at realistic grids, where a sparse
  back-substitution costs hundreds of microseconds; tiny smoke grids
  amortize the fixed per-seam cost over less work, so the hard gate
  only applies at resolution >= 8);
* **streaming**: attaching live sinks (rotating JSONL + OpenMetrics
  behind the BackgroundFlusher, pumped per unit like the progress
  board does) keeps a campaign-shaped batch within the same <5%
  budget at realistic grids (resolution >= 12, where a unit's solves
  dominate the ~1 ms of per-unit export CPU).
"""

import os
import tempfile
import time

import numpy as np

from _common import emit_bench_json, paired_overhead_pct
from repro import run_oftec
from repro.core import Evaluator
from repro.obs import (
    BackgroundFlusher,
    OpenMetricsSink,
    RotatingJsonlSink,
    TelemetryStream,
    telemetry_session,
)


def _solve_sample(network, overlay, rhs, rounds):
    """Mean seconds per warm ``network.solve`` over one batch."""
    start = time.perf_counter()
    for _ in range(rounds):
        network.solve(overlay, rhs)
    return (time.perf_counter() - start) / rounds


def _paired_warm_solve_seconds(network, overlay, rhs, rounds):
    """Median (disabled, enabled, overhead pct) per warm solve."""
    network.solve(overlay, rhs)  # prime the factor cache

    def enabled_sample():
        with telemetry_session():
            return _solve_sample(network, overlay, rhs, rounds)

    return paired_overhead_pct(
        lambda: _solve_sample(network, overlay, rhs, rounds),
        enabled_sample)


def _oftec_sample(problem):
    """Wall seconds of one cold Algorithm 1 run."""
    evaluator = Evaluator(problem)
    start = time.perf_counter()
    run_oftec(problem, evaluator=evaluator)
    return time.perf_counter() - start


def _paired_oftec_seconds(problem, repeats=7):
    """Median (disabled, enabled, overhead pct) wall seconds."""
    def enabled_sample():
        with telemetry_session():
            return _oftec_sample(problem)

    return paired_overhead_pct(lambda: _oftec_sample(problem),
                               enabled_sample, repeats=repeats)


#: Campaign units per streaming sample.  The session, flusher thread,
#: and sinks are set up once per campaign in real use, so the bench
#: amortizes that fixed cost over a campaign-shaped batch of units
#: rather than charging it to a single run.
_STREAMING_UNITS = 3


def _campaign_unit(profile, resolution):
    """One campaign-shaped unit: build the problem, run Algorithm 1.

    A real campaign unit assembles its own thermal model and pays its
    own cold factorizations (parallel workers share nothing), so the
    streaming comparison must too — reusing one warm operator would
    measure export CPU against units 20-60x lighter than reality.
    """
    from repro import build_cooling_problem
    problem = build_cooling_problem(profile,
                                    grid_resolution=resolution)
    run_oftec(problem, evaluator=Evaluator(problem))


def _plain_batch_sample(profile, resolution):
    """Wall seconds of a batch of campaign units, no telemetry."""
    start = time.perf_counter()
    for _ in range(_STREAMING_UNITS):
        _campaign_unit(profile, resolution)
    return time.perf_counter() - start


def _streaming_batch_sample(profile, resolution, directory):
    """Wall seconds of the same batch with live sinks attached.

    This is the full streaming path the CLI wires for ``--live-trace``
    / ``--openmetrics``: a telemetry session plus a BackgroundFlusher
    feeding a rotating JSONL sink and an OpenMetrics snapshot sink.
    The TelemetryStream is pumped after every unit (exactly what the
    progress board does on unit completions) and flushed to a final
    snapshot before the clock stops — the measured time includes
    exporting every span and metrics record, not just producing them.
    """
    live = os.path.join(directory, "live.jsonl")
    om = os.path.join(directory, "metrics.om")
    start = time.perf_counter()
    with telemetry_session() as (tracer, metrics):
        flusher = BackgroundFlusher(
            [RotatingJsonlSink(live), OpenMetricsSink(om)])
        stream = TelemetryStream(tracer, metrics, flusher)
        try:
            for _ in range(_STREAMING_UNITS):
                _campaign_unit(profile, resolution)
                stream.pump()
            stream.pump(final=True)
        finally:
            flusher.close()
    return time.perf_counter() - start


def _paired_streaming_seconds(profile, resolution, repeats=7):
    """Median (disabled, streaming, overhead pct) wall seconds."""
    with tempfile.TemporaryDirectory() as directory:
        return paired_overhead_pct(
            lambda: _plain_batch_sample(profile, resolution),
            lambda: _streaming_batch_sample(profile, resolution,
                                            directory),
            repeats=repeats)


def test_obs_overhead_and_emit(tec_problem, profiles, resolution):
    """Warm-solve and whole-algorithm overhead of an enabled session;
    emits BENCH_4.json."""
    model = tec_problem.model
    zeros = np.zeros(model.grid.cell_count)
    diag, rhs = model.overlays(262.0, 1.0,
                               tec_problem.dynamic_cell_power,
                               zeros, zeros, sink_heat=2.0)
    diag, rhs = diag.copy(), rhs.copy()
    network = model.network
    rounds = 200

    # Untimed warmup: ramp CPU frequency and fault in scipy pages so
    # the first timed batch is not penalized by cold-start.
    _solve_sample(network, diag, rhs, rounds)

    with telemetry_session() as (_tracer, metrics):
        network.solve(diag, rhs)
        solve_count = \
            metrics.snapshot()["counters"]["operator.solves"]
    disabled, enabled, solve_overhead_pct = \
        _paired_warm_solve_seconds(network, diag, rhs, rounds)

    with telemetry_session() as (tracer, _metrics):
        _oftec_sample(tec_problem)
        spans = len(tracer.finished)
    oftec_disabled, oftec_enabled, oftec_overhead_pct = \
        _paired_oftec_seconds(tec_problem)
    stream_disabled, stream_enabled, stream_overhead_pct = \
        _paired_streaming_seconds(profiles["basicmath"], resolution)

    print(f"\nwarm solve: disabled {1.0 / disabled:.0f}/s, enabled "
          f"{1.0 / enabled:.0f}/s ({solve_overhead_pct:+.2f}%)")
    print(f"oftec: disabled {oftec_disabled:.3f} s, enabled "
          f"{oftec_enabled:.3f} s ({oftec_overhead_pct:+.2f}%), "
          f"{spans} spans")
    print(f"streaming ({_STREAMING_UNITS} units): disabled "
          f"{stream_disabled:.3f} s, live sinks {stream_enabled:.3f} s "
          f"({stream_overhead_pct:+.2f}%)")

    payload = {
        "bench": "obs_overhead",
        "grid_resolution": resolution,
        "warm_solve": {
            "rounds": rounds,
            "disabled_solves_per_sec": 1.0 / disabled,
            "enabled_solves_per_sec": 1.0 / enabled,
            "overhead_pct": solve_overhead_pct,
        },
        "oftec": {
            "disabled_seconds": oftec_disabled,
            "enabled_seconds": oftec_enabled,
            "overhead_pct": oftec_overhead_pct,
            "spans": spans,
        },
        "streaming": {
            "disabled_seconds": stream_disabled,
            "enabled_seconds": stream_enabled,
            "overhead_pct": stream_overhead_pct,
            "units_per_sample": _STREAMING_UNITS,
        },
    }
    emit_bench_json("BENCH_4.json", payload)

    # The session actually instrumented the solves it covered.
    assert solve_count >= 1
    assert spans > 0
    # Whole-algorithm overhead is dominated by the solves themselves;
    # it must stay within the 5% budget at any resolution.
    assert oftec_overhead_pct < 5.0
    if resolution >= 12:
        # Live export costs ~1 ms of CPU per unit (a few dozen span
        # records plus an OpenMetrics rewrite) regardless of grid
        # size, and on a single-core host the flusher thread cannot
        # overlap with the solves.  At realistic grids a unit is
        # hundreds of milliseconds and the budget binds; smoke grids
        # would measure export CPU against near-zero work.
        assert stream_overhead_pct < 5.0
    if resolution >= 8:
        # Per-solve budget only binds where a solve does real work.
        assert solve_overhead_pct < 5.0
