"""Observability overhead: the telemetry plane must be near-free.

Two claims are measured and written to ``BENCH_4.json`` at the
repository root:

* **disabled**: with no telemetry session installed, the instrumented
  seams cost one attribute check — warm-solve throughput stays at the
  BENCH_3.json level;
* **enabled**: a full tracing + metrics session adds bounded overhead
  (budget: <5% on warm solves at realistic grids, where a sparse
  back-substitution costs hundreds of microseconds; tiny smoke grids
  amortize the fixed per-seam cost over less work, so the hard gate
  only applies at resolution >= 8).
"""

import time

import numpy as np

from _common import emit_bench_json, paired_overhead_pct
from repro import run_oftec
from repro.core import Evaluator
from repro.obs import telemetry_session


def _solve_sample(network, overlay, rhs, rounds):
    """Mean seconds per warm ``network.solve`` over one batch."""
    start = time.perf_counter()
    for _ in range(rounds):
        network.solve(overlay, rhs)
    return (time.perf_counter() - start) / rounds


def _paired_warm_solve_seconds(network, overlay, rhs, rounds):
    """Median (disabled, enabled, overhead pct) per warm solve."""
    network.solve(overlay, rhs)  # prime the factor cache

    def enabled_sample():
        with telemetry_session():
            return _solve_sample(network, overlay, rhs, rounds)

    return paired_overhead_pct(
        lambda: _solve_sample(network, overlay, rhs, rounds),
        enabled_sample)


def _oftec_sample(problem):
    """Wall seconds of one cold Algorithm 1 run."""
    evaluator = Evaluator(problem)
    start = time.perf_counter()
    run_oftec(problem, evaluator=evaluator)
    return time.perf_counter() - start


def _paired_oftec_seconds(problem, repeats=7):
    """Median (disabled, enabled, overhead pct) wall seconds."""
    def enabled_sample():
        with telemetry_session():
            return _oftec_sample(problem)

    return paired_overhead_pct(lambda: _oftec_sample(problem),
                               enabled_sample, repeats=repeats)


def test_obs_overhead_and_emit(tec_problem, resolution):
    """Warm-solve and whole-algorithm overhead of an enabled session;
    emits BENCH_4.json."""
    model = tec_problem.model
    zeros = np.zeros(model.grid.cell_count)
    diag, rhs = model.overlays(262.0, 1.0,
                               tec_problem.dynamic_cell_power,
                               zeros, zeros, sink_heat=2.0)
    diag, rhs = diag.copy(), rhs.copy()
    network = model.network
    rounds = 200

    # Untimed warmup: ramp CPU frequency and fault in scipy pages so
    # the first timed batch is not penalized by cold-start.
    _solve_sample(network, diag, rhs, rounds)

    with telemetry_session() as (_tracer, metrics):
        network.solve(diag, rhs)
        solve_count = \
            metrics.snapshot()["counters"]["operator.solves"]
    disabled, enabled, solve_overhead_pct = \
        _paired_warm_solve_seconds(network, diag, rhs, rounds)

    with telemetry_session() as (tracer, _metrics):
        _oftec_sample(tec_problem)
        spans = len(tracer.finished)
    oftec_disabled, oftec_enabled, oftec_overhead_pct = \
        _paired_oftec_seconds(tec_problem)

    print(f"\nwarm solve: disabled {1.0 / disabled:.0f}/s, enabled "
          f"{1.0 / enabled:.0f}/s ({solve_overhead_pct:+.2f}%)")
    print(f"oftec: disabled {oftec_disabled:.3f} s, enabled "
          f"{oftec_enabled:.3f} s ({oftec_overhead_pct:+.2f}%), "
          f"{spans} spans")

    payload = {
        "bench": "obs_overhead",
        "grid_resolution": resolution,
        "warm_solve": {
            "rounds": rounds,
            "disabled_solves_per_sec": 1.0 / disabled,
            "enabled_solves_per_sec": 1.0 / enabled,
            "overhead_pct": solve_overhead_pct,
        },
        "oftec": {
            "disabled_seconds": oftec_disabled,
            "enabled_seconds": oftec_enabled,
            "overhead_pct": oftec_overhead_pct,
            "spans": spans,
        },
    }
    emit_bench_json("BENCH_4.json", payload)

    # The session actually instrumented the solves it covered.
    assert solve_count >= 1
    assert spans > 0
    # Whole-algorithm overhead is dominated by the solves themselves;
    # it must stay within the 5% budget at any resolution.
    assert oftec_overhead_pct < 5.0
    if resolution >= 8:
        # Per-solve budget only binds where a solve does real work.
        assert solve_overhead_pct < 5.0
