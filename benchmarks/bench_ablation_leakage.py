"""Ablation: leakage handling (Equation 4 vs alternatives).

The paper adopts reference [13]'s linear Taylor term because it keeps
Constraint (14) linear and converges in a handful of iterations.  This
bench quantifies the design choice three ways:

* relinearization iteration counts with and without warm starting,
* the temperature error of *freezing* leakage at its nominal value
  (the naive alternative the paper rejects),
* the cost of ignoring leakage entirely.

The timed unit is one warm-started steady solve — the evaluator's inner
loop during optimization.
"""

import numpy as np

from repro.thermal import solve_steady_state
from repro.units import kelvin_to_celsius


def test_leakage_linearization_ablation(tec_problem, profiles,
                                        benchmark):
    model = tec_problem.model
    leakage = tec_problem.leakage
    power = tec_problem.dynamic_cell_power
    omega, current = 262.0, 0.5

    # Full model: tangent relinearization until convergence.
    full = solve_steady_state(model, omega, current, power, leakage)
    print()
    print(f"tangent relinearization: "
          f"T = {kelvin_to_celsius(full.max_chip_temperature):.2f} C in "
          f"{full.stats.outer_iterations} outer iterations")

    # Warm start: restart from the converged field, perturbed inputs.
    warm = solve_steady_state(model, omega + 5.0, current, power,
                              leakage,
                              initial_guess=full.chip_temperatures)
    print(f"warm-started neighbour solve: "
          f"{warm.stats.outer_iterations} outer iterations "
          f"(cold start: {full.stats.outer_iterations})")
    assert warm.stats.outer_iterations <= full.stats.outer_iterations

    # Frozen leakage: one linearization at the ambient guess, no loop.
    # Emulated by a model whose beta is tiny (constant-power leakage at
    # the nominal temperature).
    from repro.leakage import CellLeakageModel
    frozen_model = CellLeakageModel(
        leakage.power(np.full(leakage.cell_count,
                              model.config.ambient + 30.0)),
        beta=1e-9, t_nominal=leakage.t_nominal)
    frozen = solve_steady_state(model, omega, current, power,
                                frozen_model)
    frozen_error = abs(frozen.max_chip_temperature
                       - full.max_chip_temperature)
    print(f"frozen leakage error: {frozen_error:.2f} C "
          "(the naive alternative the paper rejects)")
    assert frozen_error > 0.5  # the design choice matters

    # No leakage at all: a much larger error in the same direction.
    none = solve_steady_state(model, omega, current, power,
                              leakage=None)
    none_error = full.max_chip_temperature - none.max_chip_temperature
    print(f"ignoring leakage underestimates the die by "
          f"{none_error:.2f} C")
    assert none_error > frozen_error

    # Timed unit: warm-started solve (the optimizer's hot path).
    def warm_solve():
        return solve_steady_state(
            model, omega, current, power, leakage,
            initial_guess=full.chip_temperatures)

    result = benchmark(warm_solve)
    assert result.stats.converged
