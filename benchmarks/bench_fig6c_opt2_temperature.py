"""Figure 6(c): maximum chip temperature after Optimization 2.

Regenerates the per-benchmark minimum-temperature comparison: OFTEC
meets T_max on all eight benchmarks, both no-TEC baselines bust it on
the heavy five (the paper's red dashed box), and OFTEC sits well below
the baselines on average (paper: more than 13 C).  The timed unit is one
Optimization 2 run on the TEC system.
"""

from conftest import HEAVY_BENCHMARKS, LIGHT_BENCHMARKS, PAPER_HEADLINES
from repro.analysis import format_comparison_table
from repro.core import Evaluator, minimize_temperature


def test_fig6c_opt2_temperatures(campaign, tec_problem, benchmark):
    print()
    print(format_comparison_table(campaign, "opt2"))

    t_max = campaign.t_max

    # OFTEC's coolest point meets the constraint on every benchmark.
    for comparison in campaign.comparisons:
        assert comparison.oftec_opt2.evaluation.max_chip_temperature \
            < t_max, comparison.name

    # Both baselines bust T_max on the heavy five even at their coolest.
    for name in HEAVY_BENCHMARKS:
        comparison = campaign[name]
        assert comparison.variable_opt2.evaluation \
            .max_chip_temperature > t_max, name
        assert comparison.fixed.evaluation.max_chip_temperature \
            > t_max, name

    # ... and meet it on the light three.
    for name in LIGHT_BENCHMARKS:
        comparison = campaign[name]
        assert comparison.variable_opt2.evaluation \
            .max_chip_temperature < t_max, name

    # OFTEC is clearly cooler on average (paper: > 13 C).
    advantage = campaign.average_opt2_temperature_advantage()
    print(f"average Opt-2 temperature advantage: {advantage:.1f} C "
          f"(paper: > {PAPER_HEADLINES['opt2_advantage_c']:.0f} C)")
    assert advantage > 5.0

    # Timed unit: Optimization 2 on the TEC system (Basicmath).
    def optimize_temperature():
        return minimize_temperature(Evaluator(tec_problem))

    outcome = benchmark.pedantic(optimize_temperature, rounds=2,
                                 iterations=1)
    assert outcome.evaluation.max_chip_temperature < t_max
