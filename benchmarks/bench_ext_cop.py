"""Extension: system-COP landscape (the reference [8] formulation).

Maps the whole-package coefficient of performance over the operating
plane and checks the structure the paper's prior work establishes: COP
is maximized at gentle actuation (low fan speed just above the runaway
boundary, little or no TEC current), is far above the bare-TEC COP, and
*differs* from both the min-temperature and the min-power operating
points — three distinct optima for three objectives.  The timed unit is
the COP post-processing over a cached sweep.
"""

from repro.analysis import analyze_system_cop
from repro.core import Evaluator
from repro.units import rad_s_to_rpm


def test_system_cop(tec_problem, basicmath_sweep, benchmark):
    evaluator = Evaluator(tec_problem)
    analysis = analyze_system_cop(tec_problem, evaluator=evaluator,
                                  sweep=basicmath_sweep)

    omega_cop, current_cop, best_cop = analysis.max_cop_point()
    print()
    print(f"max system COP = {best_cop:.1f} at "
          f"{rad_s_to_rpm(omega_cop):.0f} RPM / {current_cop:.2f} A")

    # Whole-package COP is far above bare-TEC territory.
    assert best_cop > 3.0

    # COP peaks at gentle actuation.
    assert omega_cop < 0.6 * tec_problem.limits.omega_max
    assert current_cop < 0.5 * tec_problem.limits.i_tec_max

    # The three objectives (min T, min P, max COP) pick different
    # points: min-T needs far more fan than max-COP.
    omega_t, _, _ = basicmath_sweep.min_temperature_point()
    assert omega_t > omega_cop

    def post_process():
        return analyze_system_cop(tec_problem, evaluator=evaluator,
                                  sweep=basicmath_sweep)

    result = benchmark(post_process)
    assert result.cop.shape == basicmath_sweep.temperature.shape
