"""Figure 6(a) quantified: the runaway boundary across the suite.

The paper reads the Basicmath surface and notes the chip needs "about
150 RPM" of fan before any current level yields a bounded steady state.
This bench traces that boundary precisely (bisection) for every
benchmark and several currents, verifying the published structure: the
boundary never reaches zero (a fan is always required), and maximum TEC
current raises it (the pumped + Joule heat must still leave).  The
timed unit is one bisection.
"""

from repro.analysis import (
    find_runaway_boundary_omega,
    format_runaway_boundaries,
    trace_runaway_boundary,
)

CURRENTS = (0.0, 2.0, 5.0)


def test_runaway_boundaries(tec_problem, profiles, benchmark):
    boundaries = {}
    for name, profile in profiles.items():
        problem = tec_problem.with_profile(profile)
        boundaries[name] = trace_runaway_boundary(
            problem, currents=CURRENTS, tolerance=2.0)

    print()
    print(format_runaway_boundaries(boundaries))

    for name, boundary in boundaries.items():
        # A fan is always required (the TEC-only claim, quantified) ...
        assert boundary.never_zero(), name
        # ... and max current needs more fan than none.
        assert boundary.high_current_raises_boundary(), name
        # The zero-current boundary sits far below omega_max: runaway
        # is a low-speed phenomenon, exactly as the surface shows.
        assert boundary.min_omega[0] < \
            0.3 * tec_problem.limits.omega_max, name

    heavy = tec_problem.with_profile(profiles["quicksort"])

    def bisect_once():
        return find_runaway_boundary_omega(heavy, current=0.0,
                                           tolerance=2.0)

    omega = benchmark.pedantic(bisect_once, rounds=2, iterations=1)
    assert omega > 0.0
