"""Parallel execution engine: serial-vs-parallel campaign throughput.

Not a paper figure — this bench guards the ``repro.exec`` scheduler:
the full Table 2 campaign is run serially (``workers=0``) and through
the process pool, the canonical JSON digests are required to match
bit-for-bit, and the wall-clock ratio plus per-worker operator-cache
statistics are written to ``BENCH_5.json`` at the repository root.

The >= 2x speedup gate at 4 workers only applies where the host
actually has 4 cores; on smaller machines the pool is still exercised
(determinism and merge correctness) but the ratio is recorded without
a hard bar.
"""

import hashlib
import json
import os

from _common import emit_bench_json
from repro.analysis import run_campaign
from repro.io import campaign_to_dict


def _canonical_digest(campaign):
    """sha256 of the timing-free canonical JSON of a campaign."""
    payload = campaign_to_dict(campaign, canonical=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def test_parallel_campaign_and_emit(profiles, tec_problem,
                                    baseline_problem, resolution):
    """Serial-vs-parallel wall time and bit-identity; emits
    BENCH_5.json."""
    cores = os.cpu_count() or 1

    serial = run_campaign(profiles, tec_problem, baseline_problem,
                          include_tec_only=True, workers=0)
    serial_digest = _canonical_digest(serial)
    print(f"\nserial: {serial.wall_seconds:.1f} s wall, "
          f"{len(serial.comparisons)} benchmarks")

    worker_counts = [2]
    if cores >= 4:
        worker_counts.append(4)

    parallel = {}
    for workers in worker_counts:
        campaign = run_campaign(profiles, tec_problem,
                                baseline_problem,
                                include_tec_only=True, workers=workers)
        # The merge contract: parallel physics is the serial physics.
        assert _canonical_digest(campaign) == serial_digest
        speedup = serial.wall_seconds / campaign.wall_seconds
        per_worker = campaign.worker_stats.get("per_worker", [])
        print(f"workers={workers}: {campaign.wall_seconds:.1f} s wall "
              f"({speedup:.2f}x), {len(per_worker)} worker(s)")
        parallel[f"workers_{workers}"] = {
            "workers": workers,
            "wall_seconds": campaign.wall_seconds,
            "speedup": speedup,
            "per_worker": per_worker,
        }

    payload = {
        "bench": "parallel_campaign",
        "grid_resolution": resolution,
        "benchmarks": len(serial.comparisons),
        "canonical_digest": serial_digest,
        "serial": {"wall_seconds": serial.wall_seconds},
        "parallel": parallel,
    }
    emit_bench_json("BENCH_5.json", payload)

    assert len(serial.comparisons) == len(profiles)
    # Every pool run used real worker processes with live factor
    # caches: each worker reports its own solves and factorizations.
    for run in parallel.values():
        assert run["per_worker"]
        for row in run["per_worker"]:
            assert row["solves"] > 0
            assert row["factorizations"] > 0
    if cores >= 4:
        # The scheduler must pay for itself where cores exist.
        assert parallel["workers_4"]["speedup"] >= 2.0
