"""Parallel execution engine: serial vs process / thread / warm pool.

Not a paper figure — this bench guards the ``repro.exec`` engine with
four arms, all digest-gated against the serial campaign:

* **process** — the classic fan-out (``workers=2``, plus 4 where the
  host has 4 cores), now over stage-level units on the shared-memory
  operator plane.
* **thread** — ``executor="thread"``: zero pickling, one in-process
  operator cache.  A warm-solve microbench (one factorization, many
  back-substitutions) measures the GIL-releasing SuperLU path at 2
  threads, which is the one speedup every host with 2 cores can show.
* **warm pool** — two campaigns on one persistent :class:`WorkerPool`;
  the second must run ≥90% out of worker-side factor caches
  (``pool_stats`` + per-worker telemetry prove it).

Speedup bars are conditional on the recorded core count — BENCH_5 once
quoted a 0.48× "regression" measured on a 1-CPU container — and the
artifact carries ``constrained_host`` plus ``expected_units`` so
``scripts/bench_gate.py`` can reason about the run it actually gates.
"""

import hashlib
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from _common import emit_bench_json, paired_medians
from repro import build_cooling_problem
from repro.analysis import run_campaign
from repro.analysis.campaign import CAMPAIGN_STAGES
from repro.exec import WorkerPool, live_segment_files
from repro.io import campaign_to_dict

#: Second-campaign factor-cache hit rate the warm pool must reach.
WARM_HIT_RATE_MIN = 0.9

#: Warm-solve thread speedup bar (only asserted with >= 2 cores).
THREAD_SOLVE_MIN_SPEEDUP = 1.7

#: RHS columns per back-substitution block in the warm-solve bench.
WARM_SOLVE_RHS = 64

#: Block solves per warm-solve timing sample (even, so two threads
#: split them cleanly).
WARM_SOLVE_BLOCKS = 8


def _canonical_digest(campaign):
    """sha256 of the timing-free canonical JSON of a campaign."""
    payload = campaign_to_dict(campaign, canonical=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _campaign_arm(profiles, tec, base, serial_digest, **kwargs):
    """One digest-gated campaign run; returns (campaign, record)."""
    campaign = run_campaign(profiles, tec, base,
                            include_tec_only=True, **kwargs)
    assert _canonical_digest(campaign) == serial_digest
    return campaign, {
        "wall_seconds": campaign.wall_seconds,
        "per_worker": campaign.worker_stats.get("per_worker", []),
    }


def _warm_solve_sample(factorization, rhs_blocks, pool=None):
    """Seconds to back-substitute every ``(n, k)`` RHS block.

    Each block is one C-level multi-RHS ``gstrs`` call, so the
    GIL-held Python dispatch between blocks is a sliver of the work —
    two threads on two cores genuinely overlap the solves.
    """
    started = time.perf_counter()
    if pool is None:
        for block in rhs_blocks:
            factorization.solve(block)
    else:
        list(pool.map(factorization.solve, rhs_blocks))
    return time.perf_counter() - started


def test_parallel_campaign_and_emit(profiles, tec_problem,
                                    baseline_problem, resolution):
    """Four-arm parallel engine bench; emits BENCH_5.json."""
    cores = os.cpu_count() or 1

    serial = run_campaign(profiles, tec_problem, baseline_problem,
                          include_tec_only=True, workers=0)
    serial_digest = _canonical_digest(serial)
    expected_units = len(profiles) * len(CAMPAIGN_STAGES)
    print(f"\nserial: {serial.wall_seconds:.1f} s wall, "
          f"{len(serial.comparisons)} benchmarks")

    # -- process arm --------------------------------------------------
    worker_counts = [2]
    if cores >= 4:
        worker_counts.append(4)
    parallel = {}
    for workers in worker_counts:
        campaign, record = _campaign_arm(
            profiles, tec_problem, baseline_problem, serial_digest,
            workers=workers)
        speedup = serial.wall_seconds / campaign.wall_seconds
        record.update(workers=workers, speedup=speedup)
        print(f"process workers={workers}: "
              f"{campaign.wall_seconds:.1f} s ({speedup:.2f}x), "
              f"{len(record['per_worker'])} worker(s)")
        parallel[f"workers_{workers}"] = record

    # -- thread arm ---------------------------------------------------
    thread_campaign, thread_record = _campaign_arm(
        profiles, tec_problem, baseline_problem, serial_digest,
        workers=2, executor="thread")
    thread_record.update(
        workers=2,
        speedup=serial.wall_seconds / thread_campaign.wall_seconds)
    print(f"thread workers=2: {thread_campaign.wall_seconds:.1f} s "
          f"({thread_record['speedup']:.2f}x)")

    # Warm-solve microbench: one factorization, block
    # back-substitutions — SuperLU releases the GIL inside each
    # multi-RHS solve, so two threads on two cores should nearly
    # halve the wall time with zero transport.
    operator = tec_problem.model.network.operator
    overlay = np.ones(operator.node_count)
    factorization = operator.factor(overlay)
    rng = np.random.default_rng(20140601)
    rhs_blocks = [
        rng.standard_normal((operator.node_count, WARM_SOLVE_RHS))
        for _ in range(WARM_SOLVE_BLOCKS)]
    for block in rhs_blocks:
        factorization.solve(block)  # warm every code path first
    with ThreadPoolExecutor(max_workers=2) as executor_pool:
        serial_s, threaded_s = paired_medians(
            lambda: _warm_solve_sample(factorization, rhs_blocks),
            lambda: _warm_solve_sample(factorization, rhs_blocks,
                                       executor_pool),
            repeats=5)
    solve_speedup = serial_s / threaded_s
    thread_record["warm_solve"] = {
        "rhs_per_block": WARM_SOLVE_RHS,
        "blocks_per_sample": WARM_SOLVE_BLOCKS,
        "serial_seconds": serial_s,
        "threaded_seconds": threaded_s,
        "speedup": solve_speedup,
    }
    print(f"warm solve: serial {serial_s * 1e3:.2f} ms vs 2 threads "
          f"{threaded_s * 1e3:.2f} ms ({solve_speedup:.2f}x)")

    # -- warm-pool arm ------------------------------------------------
    # Locally built templates: the big factor cache is this arm's
    # experiment and must not leak into the session fixtures.
    template = profiles["basicmath"]
    pool_tec = build_cooling_problem(template,
                                     grid_resolution=resolution)
    pool_base = build_cooling_problem(template, with_tec=False,
                                      grid_resolution=resolution)
    capacity = 8192
    pool_tec.model.network.configure_operator(factor_capacity=capacity)
    pool_base.model.network.configure_operator(
        factor_capacity=capacity)
    pool_serial = run_campaign(profiles, pool_tec, pool_base,
                               include_tec_only=True, workers=0)
    pool_digest = _canonical_digest(pool_serial)
    with WorkerPool(workers=2) as pool:
        _, cold_record = _campaign_arm(
            profiles, pool_tec, pool_base, pool_digest, pool=pool)
        warm_campaign, warm_record = _campaign_arm(
            profiles, pool_tec, pool_base, pool_digest, pool=pool)
        pool_stats = pool.stats()
    hits = sum(row["factor_cache_hits"]
               for row in warm_record["per_worker"])
    factorizations = sum(row["factorizations"]
                         for row in warm_record["per_worker"])
    hit_rate = hits / max(hits + factorizations, 1)
    warm_speedup = (cold_record["wall_seconds"]
                    / warm_campaign.wall_seconds)
    print(f"warm pool: cold {cold_record['wall_seconds']:.1f} s, "
          f"warm {warm_campaign.wall_seconds:.1f} s "
          f"({warm_speedup:.2f}x), factor hit rate {hit_rate:.3f}")

    payload = {
        "bench": "parallel_campaign",
        "grid_resolution": resolution,
        "benchmarks": len(serial.comparisons),
        "expected_units": expected_units,
        "constrained_host": cores < 4,
        "canonical_digest": serial_digest,
        "serial": {"wall_seconds": serial.wall_seconds},
        "parallel": parallel,
        "thread": thread_record,
        "warm_pool": {
            "factor_capacity": capacity,
            "cold": cold_record,
            "warm": warm_record,
            "warm_speedup": warm_speedup,
            "factor_cache_hits": hits,
            "factorizations": factorizations,
            "hit_rate": hit_rate,
            "pool_stats": pool_stats,
        },
    }
    emit_bench_json("BENCH_5.json", payload)

    assert len(serial.comparisons) == len(profiles)
    # Every pool run used real worker processes with live factor
    # caches, and every stage unit executed exactly once.
    for run in parallel.values():
        assert run["per_worker"]
        assert sum(row["units"]
                   for row in run["per_worker"]) == expected_units
        for row in run["per_worker"]:
            assert row["solves"] > 0
            assert row["factorizations"] > 0
    # The shm plane must leave nothing behind in /dev/shm.
    assert live_segment_files() == []
    # Warm reuse is machine-independent: one install, one reuse, and
    # the second campaign runs out of worker-side caches.
    assert pool_stats["context_installs"] == 1
    assert pool_stats["context_reuses"] == 1
    assert hit_rate >= WARM_HIT_RATE_MIN
    if cores >= 2:
        # Two threads back-substituting one shared factorization is
        # the speedup every multi-core host must show.
        assert solve_speedup >= THREAD_SOLVE_MIN_SPEEDUP
    if cores >= 4:
        # The scheduler must pay for itself where cores exist.
        assert parallel["workers_4"]["speedup"] >= 2.0
