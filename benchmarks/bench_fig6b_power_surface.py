"""Figure 6(b): cooling power 𝒫 over the (omega, I_TEC) plane.

Regenerates the Basicmath power surface and checks its published shape:
runaway at low omega (leakage diverges), and a minimum near the origin
of the feasible region — low fan speed, low current — because 𝒫 grows
cubically in omega and quadratically in I.  The timed unit is one full
surface row (a fixed-current omega sweep).
"""

import numpy as np

from repro.analysis import format_surface, sweep_objective_surfaces
from repro.units import rad_s_to_rpm


def test_fig6b_surface_shape(basicmath_sweep, tec_problem, benchmark):
    sweep = basicmath_sweep

    print()
    print(format_surface(sweep, "power", max_cols=11))

    # Paper shape 1: the power surface shares the runaway region with
    # the temperature surface (both "tend to infinity").
    assert ((~np.isfinite(sweep.power)) == sweep.runaway_mask).all()

    # Paper shape 2: the minimum lies near the origin of the bounded
    # region -- modest omega, small current.
    omega_p, current_p, p_best = sweep.min_power_point(
        feasible_only=True)
    assert omega_p < 0.5 * tec_problem.limits.omega_max
    assert current_p < 0.3 * tec_problem.limits.i_tec_max
    print(f"cheapest feasible point: {p_best:.2f} W at "
          f"{rad_s_to_rpm(omega_p):.0f} RPM / {current_p:.2f} A "
          "(paper: minimum occurs near the origin)")

    # Paper shape 3: power increases monotonically along both axes far
    # from the minimum (the cubic fan law and quadratic Joule term).
    finite_rows = np.flatnonzero(~sweep.runaway_mask.any(axis=1))
    top_rows = finite_rows[-3:]
    for row in top_rows:
        assert sweep.power[row, -1] > sweep.power[row, 0]
    high_current_column = sweep.power[finite_rows[-1], :]
    assert high_current_column[-1] > high_current_column.min()

    # Timed unit: a fixed-current omega sweep (one surface row).
    def sweep_row():
        return sweep_objective_surfaces(
            tec_problem, omega_points=8, current_points=1,
            omega_range=(50.0, tec_problem.limits.omega_max),
            current_range=(1.0, 1.0))

    result = benchmark.pedantic(sweep_row, rounds=3, iterations=1)
    assert result.power.shape == (8, 1)
