"""Extension: the power/temperature Pareto frontier.

Optimizations 1 and 2 are single points of a trade-off curve; this bench
traces the whole frontier for a heavy workload on both packages and
verifies the TECs' value proposition: the hybrid frontier reaches colder
thresholds and never sits above the passive frontier where both exist.
The timed unit is one frontier point (one constrained optimization).
"""

from repro.analysis import trace_pareto_frontier
from repro.core import (
    Evaluator,
    minimize_power,
    minimize_temperature,
)
from repro.units import kelvin_to_celsius


def test_pareto_frontier(tec_problem, baseline_problem, profiles,
                         benchmark):
    # Basicmath: the heaviest regime where *both* packages still have a
    # non-empty frontier below the paper's T_max (the passive package
    # cannot reach any threshold <= 90 C on the heavy five -- that gap
    # is itself part of the result, shown below via the coolest
    # reachable temperatures).
    heavy_tec = tec_problem
    heavy_base = baseline_problem

    hybrid = trace_pareto_frontier(heavy_tec, points=6)
    passive = trace_pareto_frontier(heavy_base, points=6)

    print()
    print("hybrid (TEC + fan) frontier:")
    print(f"{'T_max (C)':>11}{'P (W)':>9}{'omega':>9}{'I (A)':>8}")
    for point in hybrid.points:
        print(f"{kelvin_to_celsius(point.t_max):>11.1f}"
              f"{point.total_power:>9.2f}{point.omega:>9.0f}"
              f"{point.current:>8.2f}")
    print("passive (fan only) frontier:")
    for point in passive.points:
        print(f"{kelvin_to_celsius(point.t_max):>11.1f}"
              f"{point.total_power:>9.2f}{point.omega:>9.0f}"
              f"{point.current:>8.2f}")

    # The TECs extend the reachable range to colder thresholds.
    assert hybrid.coolest_temperature < passive.coolest_temperature
    print(f"coolest reachable: hybrid "
          f"{kelvin_to_celsius(hybrid.coolest_temperature):.1f} C vs "
          f"passive "
          f"{kelvin_to_celsius(passive.coolest_temperature):.1f} C")

    # Where both frontiers exist, the hybrid one is no worse.
    t_common = max(hybrid.points[0].t_max, passive.points[0].t_max)
    assert hybrid.power_at(t_common) <= \
        passive.power_at(t_common) * 1.05

    # Timed unit: one frontier point (Opt 2 warm start + Opt 1).
    def one_frontier_point():
        evaluator = Evaluator(heavy_tec)
        start = minimize_temperature(
            evaluator, early_stop_below=heavy_tec.limits.t_max)
        return minimize_power(evaluator,
                              x0=(start.omega, start.current))

    outcome = benchmark.pedantic(one_frontier_point, rounds=2,
                                 iterations=1)
    assert outcome.evaluation.feasible
