"""Capstone: every paper shape, verified in one pass.

Runs the executable verification of EXPERIMENTS.md against the session's
full campaign: all eleven headline shapes must reproduce.  The timed
unit is the verification itself (pure post-processing — the cost lives
in the campaign fixture, shared across the bench suite).
"""

from repro.analysis import format_shape_checks, verify_paper_shapes


def test_all_paper_shapes(campaign, benchmark):
    checks = benchmark(lambda: verify_paper_shapes(campaign))

    print()
    print(format_shape_checks(checks))

    failed = [c for c in checks if not c.passed]
    assert not failed, "\n".join(
        f"{c.claim}: {c.detail}" for c in failed)
    assert len(checks) == 11
