"""Substrate performance: the sparse thermal solver itself.

Not a paper figure — this bench guards the reproduction's own engine:
model assembly cost, the per-evaluation sparse solve, the transient
stepper, and the operator layer's factor-cache payoff, at the
production grid resolution.  The operator metrics (repeated-solve
throughput, factorizations per solve over the Table 2 campaign) are
written to ``BENCH_3.json`` at the repository root.
"""

import time

import numpy as np

from _common import emit_bench_json
from repro.analysis import run_campaign
from repro.materials import default_package_stack
from repro.geometry import Grid, alpha21264_floorplan
from repro.tec import TECArray, default_tec_device
from repro.thermal import build_package_model, simulate_transient, \
    solve_steady_state


def test_model_assembly(benchmark, resolution):
    floorplan = alpha21264_floorplan()
    grid = Grid.for_floorplan(floorplan, resolution, resolution)
    array = TECArray(grid, default_tec_device())

    def assemble():
        return build_package_model(default_package_stack(), grid,
                                   tec_array=array)

    model = benchmark(assemble)
    print(f"\n{model.network.node_count} nodes at "
          f"{resolution}x{resolution}")
    assert model.network.finalized


def test_steady_solve(benchmark, tec_problem):
    model = tec_problem.model
    power = tec_problem.dynamic_cell_power

    def solve():
        return solve_steady_state(model, 262.0, 1.0, power,
                                  tec_problem.leakage)

    result = benchmark(solve)
    assert result.stats.converged


def test_steady_solve_no_leakage(benchmark, tec_problem):
    # The raw linear-solve floor (one factorization, no outer loop).
    model = tec_problem.model
    power = tec_problem.dynamic_cell_power

    def solve():
        return solve_steady_state(model, 262.0, 1.0, power,
                                  leakage=None)

    result = benchmark(solve)
    assert np.isfinite(result.max_chip_temperature)


def _time_solves(network, overlay, rhs, rounds, cold):
    """Mean seconds per ``network.solve`` (cold drops the factor LRU)."""
    network.solve(overlay, rhs)  # prime (and JIT-warm scipy paths)
    start = time.perf_counter()
    for _ in range(rounds):
        if cold:
            network.operator.clear()
        network.solve(overlay, rhs)
    return (time.perf_counter() - start) / rounds


def test_operator_reuse_and_emit(tec_problem, baseline_problem,
                                 profiles, resolution):
    """Factor-cache payoff: repeated-solve throughput and the Table 2
    campaign's factorizations-per-solve ratio; emits BENCH_3.json."""
    model = tec_problem.model
    zeros = np.zeros(model.grid.cell_count)
    diag, rhs = model.overlays(262.0, 1.0,
                               tec_problem.dynamic_cell_power,
                               zeros, zeros, sink_heat=2.0)
    diag, rhs = diag.copy(), rhs.copy()
    network = model.network

    rounds = 40
    cold = _time_solves(network, diag, rhs, rounds, cold=True)
    warm = _time_solves(network, diag, rhs, rounds, cold=False)
    speedup = cold / warm
    print(f"\nrepeated same-omega solve: cold {1.0 / cold:.1f}/s, "
          f"warm {1.0 / warm:.1f}/s ({speedup:.1f}x)")

    tec_operator = network.operator
    base_operator = baseline_problem.model.network.operator
    tec_before = tec_operator.stats
    base_before = base_operator.stats
    start = time.perf_counter()
    campaign = run_campaign(profiles, tec_problem, baseline_problem)
    wall = time.perf_counter() - start
    solves = (tec_operator.stats.solves - tec_before.solves
              + base_operator.stats.solves - base_before.solves)
    factorizations = (
        tec_operator.stats.factorizations - tec_before.factorizations
        + base_operator.stats.factorizations
        - base_before.factorizations)
    hits = (tec_operator.stats.cache_hits - tec_before.cache_hits
            + base_operator.stats.cache_hits - base_before.cache_hits)
    print(f"campaign: {wall:.1f} s wall, {solves} solves, "
          f"{factorizations} factorizations, {hits} factor-cache hits")

    payload = {
        "bench": "thermal_solver_operator",
        "grid_resolution": resolution,
        "repeated_solve": {
            "rounds": rounds,
            "cold_solves_per_sec": 1.0 / cold,
            "warm_solves_per_sec": 1.0 / warm,
            "speedup": speedup,
        },
        "table2_campaign": {
            "wall_seconds": wall,
            "benchmarks": len(campaign.comparisons),
            "solves": solves,
            "factorizations": factorizations,
            "factorizations_per_solve": factorizations / solves,
            "factor_cache_hits": hits,
        },
    }
    emit_bench_json("BENCH_3.json", payload)

    assert len(campaign.comparisons) == len(profiles)
    # The structure/state split must pay for itself: strictly fewer
    # factorizations than solves across the campaign, and repeated
    # same-operating-point solves at least twice as fast (the 2x bar
    # only applies at realistic grids; tiny smoke grids factor in
    # microseconds, where fixed overheads dominate).
    assert factorizations < solves
    assert speedup > 1.0
    if resolution >= 8:
        assert speedup >= 2.0


def test_transient_second(benchmark, tec_problem):
    # One simulated second at 20 Hz (the boost-controller workload).
    model = tec_problem.model
    power = tec_problem.dynamic_cell_power

    def simulate():
        return simulate_transient(
            model, duration=1.0, dt=0.05, omega=262.0, current=1.0,
            dynamic_cell_power=power, leakage=tec_problem.leakage)

    result = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert not result.runaway
