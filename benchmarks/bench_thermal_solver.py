"""Substrate performance: the sparse thermal solver itself.

Not a paper figure — this bench guards the reproduction's own engine:
model assembly cost, the per-evaluation sparse solve, and the transient
stepper, at the production grid resolution.
"""

import numpy as np

from repro.materials import default_package_stack
from repro.geometry import Grid, alpha21264_floorplan
from repro.tec import TECArray, default_tec_device
from repro.thermal import build_package_model, simulate_transient, \
    solve_steady_state


def test_model_assembly(benchmark, resolution):
    floorplan = alpha21264_floorplan()
    grid = Grid.for_floorplan(floorplan, resolution, resolution)
    array = TECArray(grid, default_tec_device())

    def assemble():
        return build_package_model(default_package_stack(), grid,
                                   tec_array=array)

    model = benchmark(assemble)
    print(f"\n{model.network.node_count} nodes at "
          f"{resolution}x{resolution}")
    assert model.network.finalized


def test_steady_solve(benchmark, tec_problem):
    model = tec_problem.model
    power = tec_problem.dynamic_cell_power

    def solve():
        return solve_steady_state(model, 262.0, 1.0, power,
                                  tec_problem.leakage)

    result = benchmark(solve)
    assert result.stats.converged


def test_steady_solve_no_leakage(benchmark, tec_problem):
    # The raw linear-solve floor (one factorization, no outer loop).
    model = tec_problem.model
    power = tec_problem.dynamic_cell_power

    def solve():
        return solve_steady_state(model, 262.0, 1.0, power,
                                  leakage=None)

    result = benchmark(solve)
    assert np.isfinite(result.max_chip_temperature)


def test_transient_second(benchmark, tec_problem):
    # One simulated second at 20 Hz (the boost-controller workload).
    model = tec_problem.model
    power = tec_problem.dynamic_cell_power

    def simulate():
        return simulate_transient(
            model, duration=1.0, dt=0.05, omega=262.0, current=1.0,
            dynamic_cell_power=power, leakage=tec_problem.leakage)

    result = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert not result.runaway
